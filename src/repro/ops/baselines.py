"""Online exfiltration baselines: streaming calibration, no replay pass.

The PR 4 audit experiment calibrated
:class:`~repro.telemetry.detectors.ExfiltrationVolumeDetector` offline:
replay the benign trace once, read the peak per-pair window volume,
multiply by a margin, replay again armed.  A real fleet cannot replay
its own traffic; thresholds must come from the live stream.  This
module learns them incrementally:

* :class:`EwmaStat` — exponentially weighted mean and variance of a
  sample stream (one multiply-add per sample, no history);
* :class:`P2Quantile` — the Jain & Chlamtac P² algorithm: a streaming
  quantile estimate from five markers, no stored samples;
* :class:`OnlineExfilBaselines` — one (EWMA, P²) pair of estimators per
  (device, destination), per device, and globally, folded from
  completed :class:`~repro.telemetry.aggregate.SlidingWindowAggregator`
  windows.  The threshold for a pair is the most specific estimator
  with enough folds — pair, then device, then global — and ``inf``
  until anything has been learned (warm-up never alerts);
* :class:`OnlineExfiltrationDetector` — the drop-in detector: same
  alert shape as the offline one, but its budget is
  ``baselines.threshold(device, dst)`` and it folds windows itself via
  the pipeline's ``fold_every``/``on_window`` hooks.

Two disciplines keep this sound:

**Determinism.**  Folds iterate the window's volume table in sorted key
order and every estimator is a pure function of its own sample
sequence, so a fixed record stream — regardless of dict insertion
order upstream — always produces identical baselines, thresholds and
alerts.  The property tests shuffle ingestion order and assert exactly
this.

**Pollution resistance.**  A sample over the pair's current threshold
is *winsorized* — folded as the threshold value, not its own (counted
in ``clamped``).  Outright rejection would deadlock the estimator below
any legitimately growing signal; clamping lets a calibrated baseline
keep tracking, while an attacker ramping volume can only drag the
threshold up by the margin factor per fold — far slower than any
useful exfiltration, and the detector judges *before* the fold, so the
first over-threshold window alerts regardless.
"""

from __future__ import annotations

import math

from repro.netstack.netfilter import Verdict
from repro.telemetry.detectors import Alert, Detector


class EwmaStat:
    """Exponentially weighted running mean and variance.

    ``alpha`` is the weight of the newest sample.  The variance update
    is the standard EWMA companion form
    ``var = (1 - alpha) * (var + alpha * delta**2)`` — exact for the
    first sample (variance 0) and O(1) per update.
    """

    __slots__ = ("alpha", "mean", "var", "count")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.mean = 0.0
        self.var = 0.0
        self.count = 0

    def update(self, sample: float) -> None:
        self.count += 1
        if self.count == 1:
            self.mean = float(sample)
            self.var = 0.0
            return
        delta = sample - self.mean
        increment = self.alpha * delta
        self.mean += increment
        self.var = (1.0 - self.alpha) * (self.var + delta * increment)

    @property
    def std(self) -> float:
        return math.sqrt(self.var) if self.var > 0.0 else 0.0


class P2Quantile:
    """Streaming quantile estimation (Jain & Chlamtac's P² algorithm).

    Tracks the ``p``-quantile of a stream with five markers — minimum,
    two intermediates, the quantile estimate, maximum — adjusted per
    sample by parabolic (falling back to linear) interpolation.  Exact
    for the first five samples, O(1) memory and time after.
    """

    __slots__ = ("p", "_q", "_n", "_desired", "_dn", "count")

    def __init__(self, p: float = 0.99) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError("the quantile must be in (0, 1)")
        self.p = p
        self._q: list[float] = []
        self._n = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def update(self, sample: float) -> None:
        self.count += 1
        q = self._q
        if self.count <= 5:
            q.append(float(sample))
            q.sort()
            return
        n = self._n
        # Locate the cell, extending the extremes when needed.
        if sample < q[0]:
            q[0] = float(sample)
            cell = 0
        elif sample >= q[4]:
            q[4] = float(sample)
            cell = 3
        else:
            cell = 0
            while cell < 3 and sample >= q[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            n[index] += 1
        desired = self._desired
        for index in range(5):
            desired[index] += self._dn[index]
        # Nudge interior markers toward their desired positions.
        for index in (1, 2, 3):
            drift = desired[index] - n[index]
            if (drift >= 1.0 and n[index + 1] - n[index] > 1) or (
                drift <= -1.0 and n[index - 1] - n[index] < -1
            ):
                step = 1 if drift > 0 else -1
                candidate = self._parabolic(index, step)
                if not q[index - 1] < candidate < q[index + 1]:
                    candidate = self._linear(index, step)
                q[index] = candidate
                n[index] += step

    def _parabolic(self, index: int, step: int) -> float:
        q, n = self._q, self._n
        return q[index] + step / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + step)
            * (q[index + 1] - q[index])
            / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - step)
            * (q[index] - q[index - 1])
            / (n[index] - n[index - 1])
        )

    def _linear(self, index: int, step: int) -> float:
        q, n = self._q, self._n
        return q[index] + step * (q[index + step] - q[index]) / (n[index + step] - n[index])

    def value(self) -> float:
        """The current quantile estimate (exact below six samples)."""
        q = self._q
        if not q:
            return 0.0
        if self.count <= 5:
            rank = max(0, min(len(q) - 1, math.ceil(self.p * len(q)) - 1))
            return q[rank]
        return q[2]


class _Baseline:
    """One estimation unit: EWMA moments plus a P² tail quantile."""

    __slots__ = ("stat", "quantile")

    def __init__(self, alpha: float, p: float) -> None:
        self.stat = EwmaStat(alpha=alpha)
        self.quantile = P2Quantile(p=p)

    def update(self, sample: float) -> None:
        self.stat.update(sample)
        self.quantile.update(sample)

    @property
    def count(self) -> int:
        return self.stat.count


class OnlineExfilBaselines:
    """Hierarchical streaming thresholds per (device, destination).

    :meth:`fold` consumes one completed aggregator window: every
    in-window (device, destination) volume becomes one sample for the
    pair's baseline, the device's, and the global one.  The threshold
    for a pair is taken from the most specific estimator with at least
    ``min_samples`` folds::

        max(floor, mean + k_sigma * std, margin * P2(p))

    and ``inf`` when nothing qualifies yet — the detector stays silent
    through warm-up instead of alerting on an empty model.

    Thresholds change only at fold boundaries, so they are cached as
    plain floats; :meth:`threshold` is two dict probes worst-case and
    safe inside the publish fast-path guard.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        p: float = 0.99,
        k_sigma: float = 6.0,
        margin: float = 2.5,
        # A handful of MTU-sized packets: pairs that rarely appear in a
        # window have Poisson-level variability the EWMA variance (and a
        # five-marker quantile) cannot see, so volumes this small are
        # never anomalous on their own.
        floor: float = 12288.0,
        min_samples: int = 6,
    ) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be positive")
        self.alpha = alpha
        self.p = p
        self.k_sigma = k_sigma
        self.margin = margin
        self.floor = floor
        self.min_samples = min_samples
        self._pairs: dict[tuple[str, str], _Baseline] = {}
        self._devices: dict[str, _Baseline] = {}
        self._global = _Baseline(alpha, p)
        #: Cached thresholds, refreshed per fold.
        self._pair_cache: dict[tuple[str, str], float] = {}
        self._device_cache: dict[str, float] = {}
        self._global_cache = math.inf
        #: Lifetime counters.
        self.folds = 0
        self.samples = 0
        #: Samples winsorized by the pollution guard (over-threshold).
        self.clamped = 0

    # -- learning ----------------------------------------------------------------------

    def fold(self, aggregator) -> None:
        """Fold one aggregator window's per-pair volumes in."""
        self.fold_volumes(aggregator.volumes)

    def fold_volumes(self, volumes: dict) -> None:
        """Fold one {(device, dst): bytes} view into the baselines.

        Iterates in sorted key order so the result is independent of
        the mapping's dict insertion order (the determinism the
        property tests assert).  Samples over the pair's current
        threshold are winsorized to it — an attack cannot calibrate
        itself in faster than the margin factor per fold.  The
        federation folds *merged* fleet-wide views through this same
        entry point.
        """
        self.folds += 1
        for key, volume in sorted(volumes.items()):
            if volume <= 0:
                continue
            ceiling = self.threshold(key[0], key[1])
            if volume > ceiling:
                volume = ceiling
                self.clamped += 1
            self.samples += 1
            pair = self._pairs.get(key)
            if pair is None:
                pair = self._pairs[key] = _Baseline(self.alpha, self.p)
            pair.update(volume)
            device = self._devices.get(key[0])
            if device is None:
                device = self._devices[key[0]] = _Baseline(self.alpha, self.p)
            device.update(volume)
            self._global.update(volume)
        self._refresh_caches()

    def _threshold_of(self, baseline: _Baseline) -> float:
        if baseline.count < self.min_samples:
            return math.inf
        stat = baseline.stat
        return max(
            self.floor,
            stat.mean + self.k_sigma * stat.std,
            self.margin * baseline.quantile.value(),
        )

    def _refresh_caches(self) -> None:
        self._global_cache = self._threshold_of(self._global)
        self._device_cache = {
            device: self._threshold_of(baseline)
            for device, baseline in self._devices.items()
        }
        self._pair_cache = {
            key: self._threshold_of(baseline) for key, baseline in self._pairs.items()
        }

    # -- queries -----------------------------------------------------------------------

    def threshold(self, device: str, dst: str) -> float:
        """The budget for one pair: most specific calibrated estimator."""
        value = self._pair_cache.get((device, dst), math.inf)
        if value is not math.inf:
            return value
        value = self._device_cache.get(device, math.inf)
        if value is not math.inf:
            return value
        return self._global_cache

    def snapshot(self) -> dict:
        """JSON-friendly calibration state (for reports and tests)."""
        return {
            "folds": self.folds,
            "samples": self.samples,
            "clamped": self.clamped,
            "pairs": len(self._pairs),
            "devices": len(self._devices),
            "global_threshold": self._global_cache,
        }


class OnlineExfiltrationDetector(Detector):
    """Exfiltration-volume detection against streaming baselines.

    Drop-in for :class:`~repro.telemetry.detectors
    .ExfiltrationVolumeDetector` with the static budget replaced by
    :class:`OnlineExfilBaselines`.  The pipeline drives calibration:
    ``fold_every``/:meth:`on_window` fold a window sample every N
    records (on every record, fast path or not), and
    :meth:`interesting` keeps the publish fast path alive with a
    two-probe cached-threshold compare.
    """

    guarded = True
    #: Records between baseline folds (the pipeline's window hook stride).
    fold_every = 256

    def __init__(
        self,
        baselines: OnlineExfilBaselines | None = None,
        fold_every: int | None = None,
        rearm_packets: int | None = None,
    ) -> None:
        super().__init__(rearm_packets)
        self.baselines = baselines if baselines is not None else OnlineExfilBaselines()
        if fold_every is not None:
            if fold_every < 1:
                raise ValueError("fold_every must be positive")
            self.fold_every = fold_every

    def on_window(self, aggregator) -> None:
        # Holdoff: while the sliding window is still filling, per-pair
        # volumes only ever grow — folding those ramp prefixes would
        # bias every baseline low and the first full windows would all
        # read as anomalies.  Learn (and judge) only from windows that
        # have turned over at least once.
        if aggregator.seq >= aggregator.window_packets:
            self.baselines.fold(aggregator)

    def interesting(self, record, window) -> bool:
        if record.verdict is Verdict.DROP or not record.src_ip:
            return False
        if window.seq < window.window_packets:
            return False
        return window.volumes.get((record.src_ip, record.dst_ip), 0) > self.baselines.threshold(
            record.src_ip, record.dst_ip
        )

    def observe(self, record, source, window) -> Alert | None:
        if record.verdict is Verdict.DROP or not record.src_ip:
            return None
        if window.seq < window.window_packets:
            return None
        volume = window.window_volume(record.src_ip, record.dst_ip)
        budget = self.baselines.threshold(record.src_ip, record.dst_ip)
        if volume <= budget:
            return None
        if not self._ready((record.src_ip, record.dst_ip), window.seq, source):
            return None
        return Alert(
            kind="exfil-volume",
            device=record.src_ip,
            app=record.package_name or record.app_id,
            dst_ip=record.dst_ip,
            source=source,
            seq=window.seq,
            packet_id=record.packet_id,
            detail=(
                f"{volume} bytes to one destination inside the window "
                f"(online baseline {budget:.0f})"
            ),
        )
