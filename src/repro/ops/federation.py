"""Fleet-federated detectors: reassembling what flow hashing split up.

Device traffic reaches gateways by flow hash over the 5-tuple, so an
attacker who *rotates source ports* spreads one campaign across the
whole fleet: each gateway's window sees ``1/G`` of the volume (or of
the policy-denial burst) and every per-gateway detector stays under
threshold.  The per-gateway view is not wrong — it is just partial by
construction.

:class:`FleetFederation` runs the cross-gateway counterparts over the
per-gateway aggregator windows that
:class:`~repro.telemetry.pipeline.FleetAuditor` already holds:

* **exfiltration** — per-(device, destination) volumes *summed across
  gateways*, judged against fleet-level
  :class:`~repro.ops.baselines.OnlineExfilBaselines` (streaming, no
  calibration replay).  Scan happens before fold, and the baselines'
  pollution guard winsorizes over-threshold samples, so a split
  campaign cannot calibrate itself into the merged model either.
  Alerting holds off until at least one gateway's window has turned
  over once — before that, merged volumes only ever grow and any
  threshold folded from their prefixes is a moving target;
* **policy bursts** — per-(device, app) windowed denial counts summed
  across gateways (the aggregator maintains them incrementally for
  exactly this consumer), alerting when the fleet-wide count reaches
  the burst bar no single gateway reached;
* **spoof campaigns** — correlation over per-gateway ``spoofed-tag``
  alerts (consumed incrementally via per-pipeline cursors): one
  whitelisted app's identity borrowed by several distinct devices is a
  coordinated mimicry campaign, not a stray misconfiguration.

Every alert fires once per key per federation lifetime and carries
``source="fleet"`` — the routing layer bumps fleet-sourced severities,
because a campaign only visible here is cross-gateway by definition.
"""

from __future__ import annotations

from repro.telemetry.detectors import Alert
from repro.ops.baselines import OnlineExfilBaselines


class FleetFederation:
    """Cross-gateway exfil/burst/spoof scans over per-gateway windows.

    Drive :meth:`scan` once per drained burst (the
    :class:`~repro.telemetry.pipeline.FleetAuditor` does, via
    ``scan_federated``).  All state is deterministic functions of the
    scanned windows — no clocks, no randomness — so a fixed trace
    yields a fixed federated alert stream.
    """

    def __init__(
        self,
        baselines: OnlineExfilBaselines | None = None,
        burst: int = 8,
        campaign_devices: int = 3,
    ) -> None:
        if burst < 1:
            raise ValueError("the fleet burst threshold must be positive")
        if campaign_devices < 2:
            raise ValueError("a spoof campaign needs at least two devices")
        #: Fleet-level streaming thresholds over *merged* volumes.
        self.baselines = baselines if baselines is not None else OnlineExfilBaselines()
        self.burst = burst
        self.campaign_devices = campaign_devices
        self.scans = 0
        self._exfil_fired: set[tuple[str, str]] = set()
        self._burst_fired: set[tuple[str, str]] = set()
        self._campaign_fired: set[str] = set()
        #: app -> devices seen spoofing it (lifetime, fed by cursors).
        self._spoofing_devices: dict[str, set[str]] = {}
        #: pipeline source -> index of the next unconsumed alert.
        self._alert_cursors: dict[str, int] = {}

    # -- the scan ----------------------------------------------------------------------

    def scan(self, pipelines: dict) -> list[Alert]:
        """Run every federated analysis; returns the fresh fleet alerts."""
        self.scans += 1
        views = [pipeline.aggregator for pipeline in pipelines.values()]
        fresh: list[Alert] = []
        fresh.extend(self._scan_exfiltration(views))
        fresh.extend(self._scan_bursts(views))
        fresh.extend(self._scan_spoof_campaigns(pipelines))
        return fresh

    # -- exfiltration ------------------------------------------------------------------

    def _merged_volumes(self, views) -> dict[tuple[str, str], int]:
        merged: dict[tuple[str, str], int] = {}
        for view in views:
            for key, volume in view.volumes.items():
                merged[key] = merged.get(key, 0) + volume
        return merged

    def _scan_exfiltration(self, views) -> list[Alert]:
        merged = self._merged_volumes(views)
        primed = any(view.seq >= view.window_packets for view in views)
        if not primed:
            # Still filling: ramp prefixes would bias the merged model
            # low, so neither judge nor fold (see the module docstring).
            return []
        fired = self._exfil_fired
        fresh: list[Alert] = []
        # Judge against the thresholds learned from *previous* windows,
        # then fold — the current window must not vouch for itself.
        for key in sorted(merged):
            if key in fired:
                continue
            volume = merged[key]
            budget = self.baselines.threshold(key[0], key[1])
            if volume <= budget:
                continue
            fired.add(key)
            fresh.append(
                Alert(
                    kind="exfil-volume",
                    device=key[0],
                    dst_ip=key[1],
                    source="fleet",
                    detail=(
                        f"{volume} bytes fleet-wide to one destination inside "
                        f"the window (online baseline {budget:.0f})"
                    ),
                )
            )
        self.baselines.fold_volumes(merged)
        return fresh

    # -- policy bursts -----------------------------------------------------------------

    def _scan_bursts(self, views) -> list[Alert]:
        merged: dict[tuple[str, str], int] = {}
        for view in views:
            for key, count in view.policy_drops.items():
                merged[key] = merged.get(key, 0) + count
        fired = self._burst_fired
        fresh: list[Alert] = []
        for key in sorted(merged):
            count = merged[key]
            if count < self.burst or key in fired:
                continue
            fired.add(key)
            fresh.append(
                Alert(
                    kind="policy-burst",
                    device=key[0],
                    app=key[1],
                    source="fleet",
                    detail=(
                        f"{count} policy denials fleet-wide inside the window "
                        f"(burst {self.burst})"
                    ),
                )
            )
        return fresh

    # -- spoof campaigns ---------------------------------------------------------------

    def _scan_spoof_campaigns(self, pipelines: dict) -> list[Alert]:
        spoofing = self._spoofing_devices
        for source in sorted(pipelines):
            alerts = pipelines[source].alerts
            cursor = self._alert_cursors.get(source, 0)
            for alert in alerts[cursor:]:
                if alert.kind == "spoofed-tag" and alert.app:
                    devices = spoofing.get(alert.app)
                    if devices is None:
                        devices = spoofing[alert.app] = set()
                    devices.add(alert.device)
            self._alert_cursors[source] = len(alerts)
        fresh: list[Alert] = []
        for app in sorted(spoofing):
            devices = spoofing[app]
            if len(devices) < self.campaign_devices or app in self._campaign_fired:
                continue
            self._campaign_fired.add(app)
            fresh.append(
                Alert(
                    kind="spoof-campaign",
                    device=",".join(sorted(devices)),
                    app=app,
                    source="fleet",
                    detail=(
                        f"{len(devices)} distinct devices spoofing the identity "
                        f"of {app}"
                    ),
                )
            )
        return fresh

    # -- inspection --------------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        return {
            "scans": self.scans,
            "exfil_pairs": len(self._exfil_fired),
            "burst_keys": len(self._burst_fired),
            "spoof_campaigns": len(self._campaign_fired),
        }
