"""The durable alert bus: detectors publish, operator sinks consume.

The telemetry subsystem emits structured
:class:`~repro.telemetry.detectors.Alert` objects that, until this
module existed, piled up in per-pipeline lists nothing read.
:class:`AlertBus` is the consumer side: a bounded queue with pluggable
:class:`AlertSink` delivery and **at-least-once** semantics per sink.

Delivery model:

* every published alert gets a bus-global sequence number and joins a
  bounded pending deque; publishing at capacity *drops the new alert*
  and counts it (``dropped_backpressure``) — the bus never blocks the
  telemetry path it sits behind;
* each sink holds a cursor into the sequence.  :meth:`AlertBus.pump`
  delivers every pending alert past a sink's cursor, advancing the
  cursor only after ``deliver`` returns — a sink that raises keeps its
  cursor, so the next pump re-delivers from the failure point
  (at-least-once; sinks must tolerate duplicates, and the property
  tests inject failures to prove replay covers every alert);
* an entry leaves the deque only once *every* sink's cursor has passed
  it, so one slow or failing sink cannot lose alerts for the others.

Durability mirrors the audit log's segment rotation:
:class:`JsonlSpoolSink` appends alerts as JSON lines and rotates to a
new ``alerts-NNNNNN.jsonl`` segment every ``segment_alerts`` records;
:meth:`JsonlSpoolSink.load` / :func:`replay_spool` read the full stream
back as :class:`Alert` objects (the serialization round-trips through
``Alert.to_dict``/``from_dict``, so attribution and timestamps
survive).

The bus stamps ``Alert.ts`` with the wall clock at publish time —
detectors are deterministic functions of the record stream and leave
``ts`` at 0.0; operator-facing alerts need absolute timestamps.  Tests
inject a fake ``clock`` to keep their spools deterministic.
"""

from __future__ import annotations

import json
import time
import warnings
from collections import deque
from pathlib import Path
from dataclasses import replace

from repro.telemetry.detectors import Alert

#: File name pattern for rotated alert spool segments; zero-padding
#: keeps lexicographic order equal to rotation order.
SPOOL_PATTERN = "alerts-{sequence:06d}.jsonl"


class AlertSink:
    """One delivery target: a pager webhook, a spool file, a test list."""

    #: Stable label used for per-sink cursor bookkeeping and counters.
    name: str = "sink"

    def deliver(self, alert: Alert) -> None:
        """Deliver one alert.  Raising signals failure: the bus keeps the
        sink's cursor and re-delivers from this alert on the next pump."""
        raise NotImplementedError


class MemorySink(AlertSink):
    """Collect alerts in a list — the test double, and the summary feed."""

    def __init__(self, name: str = "memory") -> None:
        self.name = name
        self.alerts: list[Alert] = []

    def deliver(self, alert: Alert) -> None:
        self.alerts.append(alert)


class WebhookSink(AlertSink):
    """Webhook-shaped delivery: POST-like callable of one JSON payload.

    ``post`` is any callable accepting the serialized alert dict — in
    production an HTTP client bound to a paging endpoint, in this repo
    a recording stub.  Exceptions from ``post`` propagate, so a flaky
    endpoint gets at-least-once redelivery from the bus.
    """

    def __init__(self, post, name: str = "webhook") -> None:
        self.post = post
        self.name = name
        self.delivered = 0

    def deliver(self, alert: Alert) -> None:
        self.post(alert.to_dict())
        self.delivered += 1


class JsonlSpoolSink(AlertSink):
    """Durable JSON-lines spool with audit-log-style segment rotation.

    Alerts append to an open segment buffer; every ``segment_alerts``
    appended alerts the buffer is written out as one
    ``alerts-NNNNNN.jsonl`` file (call :meth:`flush` for the final
    partial segment).  One JSON object per line, encoded via
    ``Alert.to_dict`` — greppable on call, replayable in code.
    """

    def __init__(self, spool_dir, segment_alerts: int = 256, name: str = "spool") -> None:
        if segment_alerts < 1:
            raise ValueError("spool segment size must be positive")
        self.spool_dir = Path(spool_dir)
        self.segment_alerts = segment_alerts
        self.name = name
        self.segments_written = 0
        self.total_spooled = 0
        self._buffer: list[Alert] = []

    def deliver(self, alert: Alert) -> None:
        self._buffer.append(alert)
        self.total_spooled += 1
        if len(self._buffer) >= self.segment_alerts:
            self._write_segment()

    def _write_segment(self) -> None:
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        path = self.spool_dir / SPOOL_PATTERN.format(sequence=self.segments_written)
        lines = "".join(json.dumps(alert.to_dict()) + "\n" for alert in self._buffer)
        path.write_text(lines, encoding="utf-8")
        self.segments_written += 1
        self._buffer = []

    def flush(self) -> None:
        """Persist any partial segment so the spool holds every alert."""
        if self._buffer:
            self._write_segment()

    @staticmethod
    def load(spool_dir) -> list[Alert]:
        """Every spooled alert, in delivery order, across all segments.

        A crash mid-write can leave the *final* segment with a truncated
        last line; that line is dropped with a warning and every complete
        record is still returned.  Corruption anywhere else — a torn line
        in a non-final segment, or a torn line followed by valid ones —
        is not a crash signature and still raises.
        """
        alerts: list[Alert] = []
        paths = sorted(Path(spool_dir).glob("alerts-*.jsonl"))
        for index, path in enumerate(paths):
            lines = path.read_text(encoding="utf-8").splitlines()
            for line_no, line in enumerate(lines):
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    if index == len(paths) - 1 and line_no == len(lines) - 1:
                        warnings.warn(
                            f"dropping truncated final record in {path.name}",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        break
                    raise
                alerts.append(Alert.from_dict(payload))
        return alerts


def replay_spool(spool_dir) -> list[Alert]:
    """Rebuild the alert stream a :class:`JsonlSpoolSink` persisted."""
    return JsonlSpoolSink.load(spool_dir)


class AlertBus:
    """Bounded at-least-once fan-out from detectors to operator sinks.

    ``capacity`` bounds the pending deque; a publish at capacity drops
    the *new* alert (counted in ``dropped_backpressure``) rather than
    evicting an undelivered one — an alert the bus accepted is never
    silently lost, which is the half of at-least-once the bus itself
    owns (the other half, duplicate tolerance, is the sinks').

    ``clock`` supplies the publish timestamp (defaults to
    :func:`time.time`); pass a deterministic callable in tests, or
    ``None`` to leave detector timestamps untouched.
    """

    def __init__(self, capacity: int = 4096, clock=time.time) -> None:
        if capacity < 1:
            raise ValueError("bus capacity must be positive")
        self.capacity = capacity
        self.clock = clock
        #: Pending (sequence, alert) entries not yet past every cursor.
        self._pending: deque = deque()
        #: Next sequence number to assign.
        self._next_seq = 0
        self._sinks: list[AlertSink] = []
        #: Per-sink delivery cursor: the bus sequence number each sink
        #: has confirmed up to (exclusive).
        self._cursors: dict[str, int] = {}
        #: Publishes refused because the queue was full.
        self.dropped_backpressure = 0
        #: Alerts accepted onto the bus over its lifetime.
        self.published = 0
        #: Per-sink lifetime delivery failure counts.
        self.delivery_failures: dict[str, int] = {}
        self._obs_published = None
        self._obs_dropped = None
        self._obs_delivered = None
        self._obs_failures = None
        self._obs_pending = None

    def attach_observability(self, registry) -> None:
        """Mirror bus counters into a metrics registry.

        Binds ``alert_bus_*`` counters (published, dropped, per-sink
        delivered/failures) and a ``alert_bus_pending`` gauge; the
        publish/pump hot paths update them only once attached.
        """
        self._obs_published = registry.counter(
            "alert_bus_published_total", "Alerts accepted onto the bus."
        ).labels()
        self._obs_dropped = registry.counter(
            "alert_bus_dropped_total", "Publishes refused by backpressure."
        ).labels()
        self._obs_delivered = registry.counter(
            "alert_bus_delivered_total", "Alerts delivered, per sink.", ("sink",)
        )
        self._obs_failures = registry.counter(
            "alert_bus_delivery_failures_total", "Delivery failures, per sink.", ("sink",)
        )
        self._obs_pending = registry.gauge(
            "alert_bus_pending", "Alerts queued awaiting delivery."
        ).labels()
        self._obs_pending.set(len(self._pending))

    # -- wiring ------------------------------------------------------------------------

    def add_sink(self, sink: AlertSink) -> AlertSink:
        """Attach a sink; it starts at the current head (no backfill)."""
        if sink.name in self._cursors:
            raise ValueError(f"duplicate sink name: {sink.name!r}")
        self._sinks.append(sink)
        self._cursors[sink.name] = self._next_seq
        self.delivery_failures[sink.name] = 0
        return sink

    @property
    def sinks(self) -> tuple[AlertSink, ...]:
        return tuple(self._sinks)

    # -- publishing --------------------------------------------------------------------

    def publish(self, alert: Alert) -> bool:
        """Enqueue one alert; returns False when backpressure dropped it.

        The pipelines' ``alert_sink`` hook points here, so publishing
        must stay cheap: a timestamp, a bounds check, one append.
        """
        if len(self._pending) >= self.capacity:
            self.dropped_backpressure += 1
            if self._obs_dropped is not None:
                self._obs_dropped.inc()
            return False
        if self.clock is not None and alert.ts == 0.0:
            alert = replace(alert, ts=self.clock())
        self._pending.append((self._next_seq, alert))
        self._next_seq += 1
        self.published += 1
        if self._obs_published is not None:
            self._obs_published.inc()
            self._obs_pending.set(len(self._pending))
        return True

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- delivery ----------------------------------------------------------------------

    def pump(self) -> dict[str, int]:
        """Deliver pending alerts to every sink; returns per-sink counts.

        Each sink receives, in order, every pending alert past its
        cursor.  A sink that raises stops receiving for this pump and
        keeps its cursor at the failed alert, so the next pump retries
        it first — at-least-once, never skip-on-failure.  Entries all
        cursors have passed are discarded.
        """
        delivered: dict[str, int] = {}
        for sink in self._sinks:
            delivered[sink.name] = self._pump_sink(sink)
        self._discard_delivered()
        if self._obs_pending is not None:
            self._obs_pending.set(len(self._pending))
        return delivered

    def _pump_sink(self, sink: AlertSink) -> int:
        cursor = self._cursors[sink.name]
        count = 0
        for sequence, alert in self._pending:
            if sequence < cursor:
                continue
            try:
                sink.deliver(alert)
            except Exception:
                self.delivery_failures[sink.name] += 1
                if self._obs_failures is not None:
                    self._obs_failures.labels(sink=sink.name).inc()
                break
            cursor = sequence + 1
            count += 1
        self._cursors[sink.name] = cursor
        if count and self._obs_delivered is not None:
            self._obs_delivered.labels(sink=sink.name).inc(count)
        return count

    def _discard_delivered(self) -> None:
        if not self._sinks:
            # No consumers: keep the queue bounded by discarding.
            self._pending.clear()
            return
        floor = min(self._cursors[sink.name] for sink in self._sinks)
        pending = self._pending
        while pending and pending[0][0] < floor:
            pending.popleft()

    # -- inspection --------------------------------------------------------------------

    def lag(self) -> dict[str, int]:
        """Undelivered alert count per sink (0 when fully drained)."""
        head = self._next_seq
        return {name: head - cursor for name, cursor in self._cursors.items()}

    def flush(self) -> dict[str, int]:
        """Pump until every sink is drained or stops making progress.

        A persistently failing sink leaves residual lag rather than
        looping forever; the caller can inspect :meth:`lag`.
        """
        total: dict[str, int] = {name: 0 for name in self._cursors}
        while True:
            delivered = self.pump()
            for name, count in delivered.items():
                total[name] += count
            if not any(delivered.values()):
                break
        for sink in self._sinks:
            if hasattr(sink, "flush"):
                sink.flush()
        return total
