"""Operator routing and escalation: which alerts wake somebody up.

Detectors emit one :class:`~repro.telemetry.detectors.Alert` per firing
with no notion of urgency; paging a human for every policy-denial burst
in a hundred-gateway fleet would bury the real campaigns.  This module
is the operator's triage layer, consuming the bus as an ordinary
:class:`~repro.ops.bus.AlertSink`:

* every alert kind carries a default **severity** (bumped one level for
  fleet-sourced alerts — a campaign only the federated scans can see is
  by construction cross-gateway and worth more attention);
* a :class:`RoutingTable` of first-match :class:`RouteRule` rows maps
  (kind, device group, severity) to a **route** — ``page``, ``ticket``
  or ``log`` — with ``"*"`` wildcards, mirroring how on-call routing
  tables are actually written;
* **fleet-level dedup**: one (kind, device, destination) key routes at
  most once per ``cooldown`` routed alerts, across all gateways — the
  per-detector cooldowns are per gateway and cannot see that three
  gateways just reported the same device;
* **escalation**: a deduped key that keeps re-firing is itself the
  signal; when one key fires ``threshold`` times inside a ``window`` of
  routed alerts, the router synthesizes an ``escalated:`` page even if
  the table had routed the kind to a ticket.

Everything is counted in *routed alerts*, not wall-clock, for the same
reason the telemetry windows are counted in packets: determinism for a
fixed alert stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.detectors import Alert

#: Ascending urgency; index = comparable rank.
SEVERITY_ORDER = ("info", "warning", "critical")

#: Default severity per alert kind.  Unlisted kinds route as "warning".
DEFAULT_SEVERITIES = {
    "unknown-tag": "warning",
    "spoofed-tag": "critical",
    "exfil-volume": "critical",
    "policy-burst": "warning",
    "spoof-campaign": "critical",
}

#: The three places a routed alert can land.
ROUTES = ("page", "ticket", "log")


def severity_for(alert: Alert) -> str:
    """Default severity of one alert, with the fleet-source bump."""
    severity = DEFAULT_SEVERITIES.get(alert.kind, "warning")
    if alert.source == "fleet" and severity != "critical":
        severity = SEVERITY_ORDER[SEVERITY_ORDER.index(severity) + 1]
    return severity


@dataclass(frozen=True)
class RouteRule:
    """One routing-table row; ``"*"`` matches anything in that column."""

    kind: str = "*"
    group: str = "*"
    severity: str = "*"
    route: str = "log"

    def __post_init__(self) -> None:
        if self.route not in ROUTES:
            raise ValueError(f"unknown route {self.route!r} (expected one of {ROUTES})")
        if self.severity != "*" and self.severity not in SEVERITY_ORDER:
            raise ValueError(f"unknown severity {self.severity!r}")

    def matches(self, kind: str, group: str, severity: str) -> bool:
        return (
            self.kind in ("*", kind)
            and self.group in ("*", group)
            and self.severity in ("*", severity)
        )


class RoutingTable:
    """First-match routing over (kind, device group, severity).

    ``device_groups`` maps device IPs to operator-defined groups
    (tenant, site, VIP list); unmapped devices fall into
    ``default_group``.  Rules are evaluated in order and the first
    match wins — write the specific rows first, end with a catch-all.
    Alerts no rule matches fall through to ``log``.
    """

    def __init__(
        self,
        rules: list[RouteRule] | None = None,
        device_groups: dict[str, str] | None = None,
        default_group: str = "default",
    ) -> None:
        self.rules: list[RouteRule] = list(rules) if rules else []
        self.device_groups = dict(device_groups) if device_groups else {}
        self.default_group = default_group

    def add_rule(self, rule: RouteRule) -> None:
        self.rules.append(rule)

    def group_of(self, device: str) -> str:
        return self.device_groups.get(device, self.default_group)

    def route(self, alert: Alert, severity: str | None = None) -> str:
        severity = severity or severity_for(alert)
        group = self.group_of(alert.device)
        for rule in self.rules:
            if rule.matches(alert.kind, group, severity):
                return rule.route
        return "log"

    @classmethod
    def default(cls, device_groups: dict[str, str] | None = None) -> "RoutingTable":
        """The out-of-the-box table: criticals page, warnings ticket,
        the rest logs — the shape every on-call rotation starts from."""
        return cls(
            rules=[
                RouteRule(severity="critical", route="page"),
                RouteRule(severity="warning", route="ticket"),
                RouteRule(route="log"),
            ],
            device_groups=device_groups,
        )


@dataclass
class EscalationPolicy:
    """Re-fire escalation: N routed firings of one key inside a window.

    ``threshold`` firings of the same dedup key within the last
    ``window`` routed alerts escalate it to a page.  Counted in routed
    alerts (the router's clock), so a fixed alert stream always
    escalates at the same points.
    """

    threshold: int = 3
    window: int = 256

    def __post_init__(self) -> None:
        if self.threshold < 2:
            raise ValueError("escalation threshold must be at least 2 firings")
        if self.window < 1:
            raise ValueError("escalation window must be positive")


@dataclass
class RoutedAlert:
    """One routing decision: the alert plus where and why it landed."""

    alert: Alert
    severity: str
    group: str
    route: str
    escalated: bool = False


class AlertRouter:
    """The bus sink that turns alerts into pages, tickets and log lines.

    Plug into an :class:`~repro.ops.bus.AlertBus` via ``add_sink``; the
    bus's at-least-once pump may redeliver, and the dedup layer makes
    redelivery harmless (a duplicate inside the cooldown is suppressed,
    which is exactly the dedup contract sinks must honour).
    """

    name = "router"

    def __init__(
        self,
        table: RoutingTable | None = None,
        escalation: EscalationPolicy | None = None,
        cooldown: int = 64,
    ) -> None:
        if cooldown < 1:
            raise ValueError("dedup cooldown must be positive")
        self.table = table if table is not None else RoutingTable.default()
        self.escalation = escalation if escalation is not None else EscalationPolicy()
        self.cooldown = cooldown
        #: Monotonic count of alerts delivered to the router (its clock).
        self.seen = 0
        #: Dedup key -> router clock of the last *routed* firing.
        self._last_routed: dict[tuple, int] = {}
        #: Dedup key -> recent routed-firing clocks (escalation window).
        self._firings: dict[tuple, list[int]] = {}
        self._escalated: set[tuple] = set()
        self.pages: list[RoutedAlert] = []
        self.tickets: list[RoutedAlert] = []
        self.logs: list[RoutedAlert] = []
        #: Alerts suppressed as duplicates inside the cooldown.
        self.deduped = 0

    # -- the sink contract -------------------------------------------------------------

    def deliver(self, alert: Alert) -> None:
        self.seen += 1
        key = self.dedup_key(alert)
        last = self._last_routed.get(key)
        if last is not None and self.seen - last < self.cooldown:
            self.deduped += 1
            return
        self._last_routed[key] = self.seen
        severity = severity_for(alert)
        route = self.table.route(alert, severity)
        escalated = self._note_firing(key)
        if escalated and route != "page":
            route = "page"
        routed = RoutedAlert(
            alert=alert,
            severity=severity,
            group=self.table.group_of(alert.device),
            route=route,
            escalated=escalated,
        )
        {"page": self.pages, "ticket": self.tickets, "log": self.logs}[route].append(routed)

    def _note_firing(self, key: tuple) -> bool:
        """Record one routed firing; True when it crosses the escalation bar."""
        horizon = self.seen - self.escalation.window
        firings = [clock for clock in self._firings.get(key, ()) if clock > horizon]
        firings.append(self.seen)
        self._firings[key] = firings
        if len(firings) >= self.escalation.threshold:
            self._escalated.add(key)
            return True
        return False

    # -- keys and inspection -----------------------------------------------------------

    @staticmethod
    def dedup_key(alert: Alert) -> tuple:
        """Fleet-level identity of a firing: kind + device + destination.

        Deliberately excludes the gateway source — three gateways
        reporting the same (kind, device, dst) are one incident, which
        is precisely the duplication the per-detector cooldowns (keyed
        *with* the gateway) cannot collapse.
        """
        return (alert.kind, alert.device, alert.dst_ip)

    @property
    def escalated_keys(self) -> set[tuple]:
        return set(self._escalated)

    def routed(self) -> list[RoutedAlert]:
        """Every routing decision, in delivery order."""
        merged = self.pages + self.tickets + self.logs
        merged.sort(key=lambda routed: (routed.alert.seq, routed.alert.kind))
        return merged

    def counts(self) -> dict[str, int]:
        return {
            "seen": self.seen,
            "pages": len(self.pages),
            "tickets": len(self.tickets),
            "logs": len(self.logs),
            "deduped": self.deduped,
            "escalated": len(self._escalated),
        }
