"""The Policy Enforcer — BorderPatrol's border-side decision point.

A user-space NFQUEUE consumer (the prototype uses Python's
``netfilterqueue`` bindings plus Scapy, §V-C) that runs three stages per
packet:

1. *extraction* — pull the BorderPatrol option out of ``IP_OPTIONS``;
2. *decoding*   — select the app's signature mapping by the embedded
   (truncated) apk hash and map each index back to a method signature,
   rebuilding the stack trace;
3. *enforcement* — evaluate the company policy against the decoded
   context and accept or drop the packet.

Packets without a tag are dropped by default: per the paper's
compatibility discussion (§VII) every packet leaving the work profile
must originate from a socket BorderPatrol controls, so an untagged
packet inside the perimeter is either personal-profile traffic that
should not exit through the corporate uplink or an app evading the
Context Manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import SignatureDatabase
from repro.core.encoding import EncodingError, IndexWidth, StackTraceEncoder
from repro.core.policy import DecodedContext, Policy, PolicyDecision
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict


@dataclass(frozen=True)
class EnforcementRecord:
    """One enforcement decision, kept for auditing and experiments."""

    packet_id: int
    dst_ip: str
    verdict: Verdict
    reason: str
    app_id: str = ""
    package_name: str = ""
    signatures: tuple[str, ...] = ()

    @property
    def dropped(self) -> bool:
        return self.verdict is Verdict.DROP


@dataclass
class EnforcerStats:
    packets_seen: int = 0
    packets_allowed: int = 0
    packets_dropped: int = 0
    untagged_packets: int = 0
    unknown_apps: int = 0
    decode_errors: int = 0


class PolicyEnforcer:
    """NFQUEUE consumer applying the company policy to tagged packets."""

    def __init__(
        self,
        database: SignatureDatabase,
        policy: Policy | None = None,
        drop_untagged: bool = True,
        drop_unknown_apps: bool = True,
        index_width: IndexWidth = IndexWidth.FIXED_2,
        keep_records: bool = True,
    ) -> None:
        self.database = database
        self.policy = policy or Policy.allow_all()
        self.drop_untagged = drop_untagged
        self.drop_unknown_apps = drop_unknown_apps
        self.encoder = StackTraceEncoder(index_width=index_width)
        self.keep_records = keep_records
        self.stats = EnforcerStats()
        self.records: list[EnforcementRecord] = []

    # -- policy management ------------------------------------------------------------

    def set_policy(self, policy: Policy) -> None:
        """Swap the active policy; takes effect for the next packet."""
        self.policy = policy

    # -- QueueConsumer interface ---------------------------------------------------------

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        self.stats.packets_seen += 1
        verdict, record = self._decide(packet)
        if verdict is Verdict.ACCEPT:
            self.stats.packets_allowed += 1
        else:
            self.stats.packets_dropped += 1
        if self.keep_records:
            self.records.append(record)
        return verdict, packet

    # -- the three stages -----------------------------------------------------------------

    def _decide(self, packet: IPPacket) -> tuple[Verdict, EnforcementRecord]:
        # Stage 1: extraction.
        tag_option = self.encoder.decode_options(packet.options)
        if tag_option is None:
            self.stats.untagged_packets += 1
            verdict = Verdict.DROP if self.drop_untagged else Verdict.ACCEPT
            return verdict, EnforcementRecord(
                packet_id=packet.packet_id,
                dst_ip=packet.dst_ip,
                verdict=verdict,
                reason="untagged packet",
            )

        # Stage 2: decoding.
        entry = self.database.lookup_app_id(tag_option.app_id)
        if entry is None:
            self.stats.unknown_apps += 1
            verdict = Verdict.DROP if self.drop_unknown_apps else Verdict.ACCEPT
            return verdict, EnforcementRecord(
                packet_id=packet.packet_id,
                dst_ip=packet.dst_ip,
                verdict=verdict,
                reason="unknown app hash",
                app_id=tag_option.app_id,
            )
        try:
            signatures = tuple(entry.decode_indexes(tag_option.indexes))
        except IndexError:
            self.stats.decode_errors += 1
            return Verdict.DROP, EnforcementRecord(
                packet_id=packet.packet_id,
                dst_ip=packet.dst_ip,
                verdict=Verdict.DROP,
                reason="index out of range for app mapping",
                app_id=tag_option.app_id,
                package_name=entry.package_name,
            )
        context = DecodedContext(
            app_id=tag_option.app_id,
            signatures=signatures,
            app_md5=entry.md5,
            package_name=entry.package_name,
        )

        # Stage 3: enforcement.
        decision: PolicyDecision = self.policy.evaluate(context)
        return decision.verdict, EnforcementRecord(
            packet_id=packet.packet_id,
            dst_ip=packet.dst_ip,
            verdict=decision.verdict,
            reason=decision.reason,
            app_id=tag_option.app_id,
            package_name=entry.package_name,
            signatures=signatures,
        )

    # -- inspection -----------------------------------------------------------------------

    def dropped_records(self) -> list[EnforcementRecord]:
        return [r for r in self.records if r.dropped]

    def allowed_records(self) -> list[EnforcementRecord]:
        return [r for r in self.records if not r.dropped]

    def decoded_stacks_to(self, dst_ip: str) -> list[tuple[str, ...]]:
        """Distinct decoded stack traces observed towards ``dst_ip``."""
        return [r.signatures for r in self.records if r.dst_ip == dst_ip and r.signatures]

    def reset(self) -> None:
        self.stats = EnforcerStats()
        self.records.clear()
