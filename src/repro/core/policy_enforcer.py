"""The Policy Enforcer — BorderPatrol's border-side decision point.

A user-space NFQUEUE consumer (the prototype uses Python's
``netfilterqueue`` bindings plus Scapy, §V-C) that runs three stages per
packet:

1. *extraction* — pull the BorderPatrol option out of ``IP_OPTIONS``;
2. *decoding*   — select the app's signature mapping by the embedded
   (truncated) apk hash and map each index back to a method signature,
   rebuilding the stack trace;
3. *enforcement* — evaluate the company policy against the decoded
   context and accept or drop the packet.

Packets without a tag are dropped by default: per the paper's
compatibility discussion (§VII) every packet leaving the work profile
must originate from a socket BorderPatrol controls, so an untagged
packet inside the perimeter is either personal-profile traffic that
should not exit through the corporate uplink or an app evading the
Context Manager.

Fast path
---------
The naive pipeline above decodes every tag index back to a full
signature string and re-evaluates the policy for every packet — the
per-packet cost Figure 4 attributes to the Python NFQUEUE consumer.
Production gateways avoid this with two standard techniques this module
implements:

* **policy compilation** (:meth:`repro.core.policy.Policy.compile`):
  rules are lowered, per app, into raw method-index sets, so stage 3
  matches the integer tag indexes directly; signature strings are only
  decoded for audit records (or when a rule cannot be compiled);
* **flow caching** (:class:`FlowCache`): a conntrack-style LRU keyed on
  (flow 5-tuple, raw tag bytes) lets repeated packets of a flow skip
  decoding and evaluation entirely.  The cache is invalidated by
  :meth:`PolicyEnforcer.set_policy` and :meth:`PolicyEnforcer.reset`.

Both layers are verdict-preserving: for any replay, the fast path and
the naive path produce identical verdicts, matched rules and reasons.

Control plane
-------------
:meth:`PolicyEnforcer.set_policy` is the legacy whole-replacement path:
it recompiles every app and flushes the entire flow cache.  Under
continuous admin edits the enforcer instead subscribes to a
:class:`~repro.core.policy_store.PolicyStore` and receives versioned
:class:`~repro.core.policy_store.PolicyDelta` objects
(:meth:`PolicyEnforcer.apply_policy_delta`): only the apps a changed
rule can touch are recompiled, and only those apps' flow-cache entries
are dropped (:meth:`FlowCache.invalidate_apps`), keeping unrelated hot
flows warm across rule edits.  Whole-cache invalidation remains the
fallback for database-generation changes and whitelist-mode
transitions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, fields
from time import perf_counter

from repro.core.database import SignatureDatabase
from repro.core.encoding import EncodingError, IndexWidth, StackTraceEncoder
from repro.core.policy import CompiledPolicy, DecodedContext, Policy, PolicyDecision
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict

#: Canonical integrity-failure reasons.  These are enforcement outcomes
#: that indicate tag tampering/evasion rather than an ordinary policy
#: denial; the telemetry detectors match on them, so they are constants
#: instead of repeated string literals.
REASON_UNTAGGED = "untagged packet"
REASON_UNKNOWN_APP = "unknown app hash"
REASON_DECODE_RANGE = "index out of range for app mapping"


@dataclass(frozen=True)
class EnforcementRecord:
    """One enforcement decision, kept for auditing and experiments."""

    packet_id: int
    dst_ip: str
    verdict: Verdict
    reason: str
    app_id: str = ""
    package_name: str = ""
    signatures: tuple[str, ...] = ()
    #: Telemetry attribution: the sending device's enterprise IP and the
    #: outbound payload size (bytes-out aggregation needs both).
    src_ip: str = ""
    payload_bytes: int = 0

    @property
    def dropped(self) -> bool:
        return self.verdict is Verdict.DROP


@dataclass
class EnforcerStats:
    packets_seen: int = 0
    packets_allowed: int = 0
    packets_dropped: int = 0
    untagged_packets: int = 0
    unknown_apps: int = 0
    decode_errors: int = 0
    #: Flow-cache behaviour (conntrack-style fast path).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    #: Control-plane deltas applied (:meth:`PolicyEnforcer.apply_policy_delta`).
    policy_deltas_applied: int = 0
    #: Apps recompiled incrementally by deltas (vs whole-policy recompiles).
    apps_recompiled: int = 0
    #: Deltas that invalidated surgically instead of flushing the cache.
    cache_surgical_invalidations: int = 0
    #: Flow-cache entries dropped by surgical (per-app) invalidation.
    cache_entries_invalidated: int = 0
    #: How many packets required a full index→string decode.
    full_decodes: int = 0
    #: Policy evaluations through the compiled (integer) path.
    compiled_evals: int = 0
    #: Policy evaluations that fell back to string matching.
    fallback_evals: int = 0
    #: Persistent-pool runtime health (``backend="pool"``): worker
    #: deaths detected, fresh forks spawned in their place (reseeds
    #: after a stale shadow or compaction included), and batches
    #: replayed to a replacement so no packet was silently dropped.
    pool_worker_crashes: int = 0
    pool_worker_respawns: int = 0
    pool_batches_replayed: int = 0
    #: Policy changes shipped to pool workers: surgical delta-log
    #: records vs pickled full-policy syncs (the fallback path).
    pool_delta_pushes: int = 0
    pool_snapshot_syncs: int = 0
    #: Batches shipped via the shared-memory ring vs pickled over the
    #: pipe (ring full, oversized, or codec-incompatible packets).
    pool_ring_batches: int = 0
    pool_pickled_batches: int = 0
    #: Batches a worker failed deterministically (an enforcement error
    #: reply, not a crash): popped and failed at collect instead of
    #: being replayed into the respawn forever.
    pool_poisoned_batches: int = 0
    #: Parallel backends degraded to sequential at construction because
    #: the platform has no fork start method.
    backend_fallbacks: int = 0
    #: Flow-cache entries lost per app (surgical invalidations + LRU
    #: evictions): which apps churn the cache hardest.
    cache_churn_by_app: dict = field(default_factory=dict)

    def merge(self, other: "EnforcerStats") -> None:
        """Accumulate ``other`` into this stats object (counters add,
        per-app churn maps merge key-wise)."""
        for stat_field in fields(EnforcerStats):
            mine = getattr(self, stat_field.name)
            theirs = getattr(other, stat_field.name)
            if isinstance(mine, dict):
                for key, count in theirs.items():
                    mine[key] = mine.get(key, 0) + count
            else:
                setattr(self, stat_field.name, mine + theirs)

    def delta_since(self, baseline: "EnforcerStats") -> "EnforcerStats":
        """The counters accrued since ``baseline`` was snapshotted.

        This is what a worker process reports back to the parent shard:
        the parent merges the delta, so counting work exactly once even
        though the child started from a copy of the parent's stats.
        """
        delta = EnforcerStats()
        for stat_field in fields(EnforcerStats):
            mine = getattr(self, stat_field.name)
            base = getattr(baseline, stat_field.name)
            if isinstance(mine, dict):
                churn = {
                    key: count - base.get(key, 0)
                    for key, count in mine.items()
                    if count - base.get(key, 0)
                }
                setattr(delta, stat_field.name, churn)
            else:
                setattr(delta, stat_field.name, mine - base)
        return delta

    def top_churn_apps(self, limit: int = 3) -> list[tuple[str, int]]:
        """The apps losing the most flow-cache entries, hottest first."""
        ranked = sorted(self.cache_churn_by_app.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    def copy(self) -> "EnforcerStats":
        snapshot = EnforcerStats()
        snapshot.merge(self)
        return snapshot


@dataclass(frozen=True)
class _CachedDecision:
    """What the flow cache remembers about one (flow, tag) combination."""

    verdict: Verdict
    reason: str
    app_id: str
    package_name: str
    signatures: tuple[str, ...]


def distinct_stacks(
    records: list[EnforcementRecord], dst_ip: str
) -> list[tuple[str, ...]]:
    """Distinct decoded stacks towards ``dst_ip``, in first-seen order."""
    seen: set[tuple[str, ...]] = set()
    stacks: list[tuple[str, ...]] = []
    for record in records:
        if record.dst_ip != dst_ip or not record.signatures:
            continue
        if record.signatures in seen:
            continue
        seen.add(record.signatures)
        stacks.append(record.signatures)
    return stacks


class FlowCache:
    """Conntrack-style LRU of enforcement outcomes.

    Keys are ``(flow 5-tuple, raw tag bytes)``: every field that can
    change the verdict for a given policy.  Values are
    :class:`_CachedDecision` templates from which per-packet audit
    records are stamped out on a hit.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("flow cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _CachedDecision]" = OrderedDict()

    def get(self, key: tuple) -> _CachedDecision | None:
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
        return cached

    def put(self, key: tuple, value: _CachedDecision) -> str | None:
        """Store ``value``; returns the evicted flow's app label (None if
        no older flow was evicted)."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            return evicted.package_name or evicted.app_id
        return None

    def invalidate_apps(self, app_ids: set[str]) -> dict[str, int]:
        """Drop every cached verdict belonging to one of ``app_ids``.

        The surgical counterpart of :meth:`clear`: a policy delta that
        can only affect some apps removes exactly those apps' entries,
        so unrelated hot flows keep their cached verdicts.  Returns the
        number of entries removed per app, keyed by package name (the
        label administrators see in churn reports) with the on-wire app
        id as fallback.
        """
        stale = [key for key, value in self._entries.items() if value.app_id in app_ids]
        removed: dict[str, int] = {}
        for key in stale:
            entry = self._entries.pop(key)
            label = entry.package_name or entry.app_id
            removed[label] = removed.get(label, 0) + 1
        return removed

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class PolicyEnforcer:
    """NFQUEUE consumer applying the company policy to tagged packets.

    ``compile_policy`` and ``flow_cache_size`` control the fast path;
    ``compile_policy=False`` together with ``flow_cache_size=0`` yields
    the paper's naive per-packet decode-and-evaluate pipeline.
    """

    def __init__(
        self,
        database: SignatureDatabase,
        policy: Policy | None = None,
        drop_untagged: bool = True,
        drop_unknown_apps: bool = True,
        index_width: IndexWidth = IndexWidth.FIXED_2,
        keep_records: bool = True,
        compile_policy: bool = True,
        flow_cache_size: int = 4096,
        record_capacity: int = 65536,
        audit_log=None,
        audit_sink=None,
        audit_source: str = "gateway",
    ) -> None:
        self.database = database
        # `policy or ...` would discard an *empty* Policy (its __len__
        # makes it falsy) and silently sever the caller's reference —
        # rules added to it later would never be enforced.
        self.policy = policy if policy is not None else Policy.allow_all()
        self.drop_untagged = drop_untagged
        self.drop_unknown_apps = drop_unknown_apps
        self.encoder = StackTraceEncoder(index_width=index_width)
        self.keep_records = keep_records
        self.compile_policy = compile_policy
        self.stats = EnforcerStats()
        # Imported lazily: the telemetry package sits on top of this
        # module, so a top-level import would be circular.
        from repro.telemetry.audit import AuditLog

        #: Audit trail of recent decisions: a bounded ring (optionally
        #: spooling JSON segments) instead of the unbounded list it used
        #: to be, so ``keep_records=True`` cannot grow without limit.
        self.records: AuditLog = (
            audit_log if audit_log is not None else AuditLog(capacity=record_capacity)
        )
        #: Streaming telemetry: every decided record is published here
        #: (even with ``keep_records=False``) when a sink is attached.
        self.audit_sink = audit_sink
        self.audit_source = audit_source
        # Bound-method cache: one attribute lookup per packet matters on
        # the hot path.
        self._sink_publish = audit_sink.publish if audit_sink is not None else None
        self.flow_cache: FlowCache | None = (
            FlowCache(flow_cache_size) if flow_cache_size > 0 else None
        )
        #: Observability hook (see ``repro.obs.instrument``).  Detached
        #: by default: the hot path pays one attribute check per packet.
        self._obs = None
        self._obs_tick = 0
        #: Control-plane policy version this enforcer has converged to
        #: (0 until a PolicyStore syncs or deltas it).
        self.policy_version = 0
        self._cache_generation = database.generation
        self._active_policy = self.policy
        self._active_revision = self.policy.revision
        self._active_rule_count = len(self.policy.rules)
        self._compiled: CompiledPolicy | None = (
            self.policy.compile(database) if compile_policy else None
        )

    # -- policy management ------------------------------------------------------------

    def set_policy(self, policy: Policy) -> None:
        """Swap the active policy; takes effect for the next packet.

        Recompiles the fast path and flushes the flow cache — cached
        verdicts were computed under the old policy.
        """
        self.policy = policy
        self.invalidate_caches()

    def sync_policy(self, policy: Policy, version: int) -> None:
        """Full resync from a control plane: swap the policy, adopt its version.

        Used by :meth:`repro.core.policy_store.PolicyStore.subscribe`
        and :meth:`~repro.core.policy_store.PolicyStore.reset_to`; the
        delta path is :meth:`apply_policy_delta`.
        """
        self.set_policy(policy)
        self.policy_version = version

    def apply_policy_delta(self, delta) -> None:
        """Apply a versioned :class:`~repro.core.policy_store.PolicyDelta`.

        The surgical path: recompile only the apps the delta's changed
        rules can touch, and invalidate only those apps' flow-cache
        entries.  Falls back to :meth:`invalidate_caches` (whole cache,
        full recompile) when the delta says so (``delta.full``: default
        action change or whitelist-mode transition), when this enforcer
        runs without compilation, when the database generation moved, or
        when the active policy does not match the delta's base — it was
        mutated outside the control plane (in-place ``add_rule`` on the
        live policy object), so the compiled state is not a valid base
        for an incremental patch.  In every fallback the store's
        snapshot still wins: enforcement converges to the store's rules,
        never to a mix.
        """
        self.stats.policy_deltas_applied += 1
        self.policy_version = delta.version
        previous = self.policy
        self.policy = delta.policy
        if (
            delta.full
            or not self.compile_policy
            or self._compiled is None
            or previous is not self._active_policy
            or previous.revision != self._active_revision
            or len(previous.rules) != self._active_rule_count
            or tuple(previous.rules) != delta.base_rules
            or previous.default_action is not delta.base_default
        ):
            self.invalidate_caches()
            return
        affected = self._compiled.apply_delta(delta.policy, delta.changed_rules)
        if affected is None:
            self.invalidate_caches()
            return
        self._active_policy = self.policy
        self._active_revision = self.policy.revision
        self._active_rule_count = len(self.policy.rules)
        self.stats.apps_recompiled += len(affected)
        if self.flow_cache is not None:
            self.stats.cache_surgical_invalidations += 1
            if affected:
                removed = self.flow_cache.invalidate_apps(affected)
                self.stats.cache_entries_invalidated += sum(removed.values())
                for label, count in removed.items():
                    self.stats.cache_churn_by_app[label] = (
                        self.stats.cache_churn_by_app.get(label, 0) + count
                    )

    def invalidate_caches(self) -> None:
        """Recompile the policy and drop every cached flow verdict.

        Runs automatically on :meth:`set_policy` and whenever the
        enforcer notices the active policy gained rules in place
        (``policy.add_rule``) or was swapped by attribute assignment.
        """
        self._compiled = self.policy.compile(self.database) if self.compile_policy else None
        self._cache_generation = self.database.generation
        self._active_policy = self.policy
        self._active_revision = self.policy.revision
        self._active_rule_count = len(self.policy.rules)
        if self.flow_cache is not None:
            self.flow_cache.clear()
            self.stats.cache_invalidations += 1

    # -- QueueConsumer interface ---------------------------------------------------------

    def attach_audit_sink(self, sink, source: str | None = None) -> None:
        """Publish every future decision into ``sink`` (an
        :class:`~repro.telemetry.pipeline.AuditSink`), labelled with
        ``source`` — typically the gateway name telemetry aggregates by."""
        self.audit_sink = sink
        self._sink_publish = sink.publish if sink is not None else None
        if source is not None:
            self.audit_source = source

    def attach_observability(self, obs) -> None:
        """Attach (or detach, with ``None``) an
        :class:`~repro.obs.instrument.EnforcerObservability`: every
        ``obs.sample_every``-th packet then reports per-stage latency
        marks.  Verdicts are untouched — instrumentation only times the
        path the packet takes anyway."""
        self._obs = obs
        self._obs_tick = 0

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        self.stats.packets_seen += 1
        obs = self._obs
        if obs is not None:
            tick = self._obs_tick + 1
            if tick >= obs.sample_every:
                self._obs_tick = 0
                marks: list = []
                started = perf_counter()
                verdict, record = self._decide(packet, marks)
                obs.record(started, marks)
            else:
                self._obs_tick = tick
                verdict, record = self._decide(packet)
        else:
            verdict, record = self._decide(packet)
        if verdict is Verdict.ACCEPT:
            self.stats.packets_allowed += 1
        else:
            self.stats.packets_dropped += 1
        if self.keep_records:
            self.records.append(record)
        if self._sink_publish is not None:
            self._sink_publish(record, self.audit_source)
        return verdict, packet

    def process_batch(self, packets: list[IPPacket]) -> list[tuple[Verdict, IPPacket]]:
        """Process a burst of packets, preserving input order."""
        return [self.process(packet) for packet in packets]

    # -- the three stages -----------------------------------------------------------------

    def _decide(
        self, packet: IPPacket, marks: list | None = None
    ) -> tuple[Verdict, EnforcementRecord]:
        # ``marks`` collects (stage, perf_counter) completion stamps for
        # sampled packets (see attach_observability); None on the fast path.
        # The naive path read the live rule list every packet, so rules
        # added in place (policy.add_rule) — or removed by mutating the
        # public ``rules`` list directly — took effect immediately; three
        # integer/identity compares keep that contract on the fast path.
        # (Same-length in-place rule *replacement* is the one mutation
        # this cannot see; call invalidate_caches() after doing that.)
        if (
            self.policy is not self._active_policy
            or self.policy.revision != self._active_revision
            or len(self.policy.rules) != self._active_rule_count
        ):
            self.invalidate_caches()

        # Stage 1: extraction.
        tag_bytes = self.encoder.extract_tag_bytes(packet.options)
        if marks is not None:
            marks.append(("extract", perf_counter()))
        if tag_bytes is None:
            self.stats.untagged_packets += 1
            verdict = Verdict.DROP if self.drop_untagged else Verdict.ACCEPT
            return verdict, EnforcementRecord(
                packet_id=packet.packet_id,
                dst_ip=packet.dst_ip,
                verdict=verdict,
                reason=REASON_UNTAGGED,
                src_ip=packet.src_ip,
                payload_bytes=packet.payload_size,
            )

        # Flow-cache lookup: repeated packets of a flow skip stages 2 and 3.
        cache_key: tuple | None = None
        if self.flow_cache is not None:
            if self._cache_generation != self.database.generation:
                # The database changed (enrolment/removal): cached verdicts
                # may be stale, e.g. an ACCEPT for a since-revoked app.
                self.flow_cache.clear()
                self._cache_generation = self.database.generation
                self.stats.cache_invalidations += 1
            cache_key = (packet.flow_tuple, tag_bytes)
            cached = self.flow_cache.get(cache_key)
            if marks is not None:
                marks.append(("cache_lookup", perf_counter()))
            if cached is not None:
                self.stats.cache_hits += 1
                return cached.verdict, EnforcementRecord(
                    packet_id=packet.packet_id,
                    dst_ip=packet.dst_ip,
                    verdict=cached.verdict,
                    reason=cached.reason,
                    app_id=cached.app_id,
                    package_name=cached.package_name,
                    signatures=cached.signatures,
                    src_ip=packet.src_ip,
                    payload_bytes=packet.payload_size,
                )
            self.stats.cache_misses += 1

        # Stage 2: decoding.
        tag = self.encoder.decode(tag_bytes)
        entry = self.database.lookup_app_id(tag.app_id)
        if marks is not None:
            marks.append(("decode", perf_counter()))
        if entry is None:
            self.stats.unknown_apps += 1
            verdict = Verdict.DROP if self.drop_unknown_apps else Verdict.ACCEPT
            return verdict, EnforcementRecord(
                packet_id=packet.packet_id,
                dst_ip=packet.dst_ip,
                verdict=verdict,
                reason=REASON_UNKNOWN_APP,
                app_id=tag.app_id,
                src_ip=packet.src_ip,
                payload_bytes=packet.payload_size,
            )
        if any(not 0 <= index < entry.method_count for index in tag.indexes):
            self.stats.decode_errors += 1
            return Verdict.DROP, EnforcementRecord(
                packet_id=packet.packet_id,
                dst_ip=packet.dst_ip,
                verdict=Verdict.DROP,
                reason=REASON_DECODE_RANGE,
                app_id=tag.app_id,
                package_name=entry.package_name,
                src_ip=packet.src_ip,
                payload_bytes=packet.payload_size,
            )

        # Stage 3: enforcement — compiled integer matching when possible,
        # string decoding only for audit records or uncompilable rules.
        compiled = self._compiled.for_app(tag.app_id) if self._compiled is not None else None
        signatures: tuple[str, ...] = ()
        if compiled is not None:
            decision = compiled.evaluate_indexes(tag.indexes)
            self.stats.compiled_evals += 1
            if self.keep_records:
                signatures = tuple(entry.decode_indexes(tag.indexes))
                self.stats.full_decodes += 1
        else:
            signatures = tuple(entry.decode_indexes(tag.indexes))
            self.stats.full_decodes += 1
            context = DecodedContext(
                app_id=tag.app_id,
                signatures=signatures,
                app_md5=entry.md5,
                package_name=entry.package_name,
            )
            decision = self.policy.evaluate(context)
            self.stats.fallback_evals += 1
        if marks is not None:
            marks.append(("eval", perf_counter()))

        if cache_key is not None:
            evicted_app = self.flow_cache.put(
                cache_key,
                _CachedDecision(
                    verdict=decision.verdict,
                    reason=decision.reason,
                    app_id=tag.app_id,
                    package_name=entry.package_name,
                    signatures=signatures,
                ),
            )
            if evicted_app is not None:
                self.stats.cache_evictions += 1
                self.stats.cache_churn_by_app[evicted_app] = (
                    self.stats.cache_churn_by_app.get(evicted_app, 0) + 1
                )
            if marks is not None:
                marks.append(("cache_put", perf_counter()))

        return decision.verdict, EnforcementRecord(
            packet_id=packet.packet_id,
            dst_ip=packet.dst_ip,
            verdict=decision.verdict,
            reason=decision.reason,
            app_id=tag.app_id,
            package_name=entry.package_name,
            signatures=signatures,
            src_ip=packet.src_ip,
            payload_bytes=packet.payload_size,
        )

    # -- inspection -----------------------------------------------------------------------

    def dropped_records(self) -> list[EnforcementRecord]:
        return [r for r in self.records if r.dropped]

    def allowed_records(self) -> list[EnforcementRecord]:
        return [r for r in self.records if not r.dropped]

    def decoded_stacks_to(self, dst_ip: str) -> list[tuple[str, ...]]:
        """Distinct decoded stack traces observed towards ``dst_ip``.

        Each stack appears once, in first-seen order, no matter how many
        packets carried it.
        """
        return distinct_stacks(self.records, dst_ip)

    def clear_records(self) -> None:
        """Drop the audit records while keeping stats and caches intact."""
        self.records.clear()

    def reset(self) -> None:
        self.stats = EnforcerStats()
        self.records.clear()
        if self.flow_cache is not None:
            self.flow_cache.clear()
