"""End-to-end BorderPatrol deployment.

Ties every component to its place in the paper's architecture
(Figure 1): the Offline Analyzer and its database live in the
enterprise back office, the Policy Enforcer and Packet Sanitizer sit in
NFQUEUEs at the gateway, and provisioned devices ship the patched
kernel, the Xposed framework and the Context Manager module.  This is
the object most examples and experiments interact with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.app_model import AppBehavior
from repro.android.costs import CostModel
from repro.android.device import Device, NetworkMode
from repro.apk.package import ApkFile
from repro.core.context_manager import ContextManager, ContextManagerMode
from repro.core.database import SignatureDatabase
from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.packet_sanitizer import PacketSanitizer
from repro.core.policy import Policy
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.policy_store import PolicyDelta, PolicyStore, PolicyUpdate
from repro.core.encoding import IndexWidth
from repro.netstack.sockets import KernelConfig
from repro.network.topology import EnterpriseNetwork, NetworkConfig


@dataclass
class ProvisionedDevice:
    """A device enrolled in the BYOD programme plus its Context Manager."""

    device: Device
    context_manager: ContextManager


class BorderPatrolDeployment:
    """A complete BorderPatrol installation for one enterprise network."""

    def __init__(
        self,
        network: EnterpriseNetwork | None = None,
        policy: Policy | None = None,
        drop_untagged: bool = True,
        drop_unknown_apps: bool = True,
        index_width: IndexWidth = IndexWidth.FIXED_2,
        cost_model: CostModel | None = None,
        context_manager_mode: ContextManagerMode = ContextManagerMode.DYNAMIC,
        tag_replay_hardening: bool = False,
        enforcer_shards: int = 1,
        num_gateways: int = 1,
        shard_backend: str = "sequential",
        gateway_backend: str = "sequential",
        scheduler: str = "static",
        scheduler_config=None,
        keep_records: bool = True,
        compact_every: int | None = None,
    ) -> None:
        if num_gateways < 1:
            raise ValueError("a deployment needs at least one gateway")
        if network is None:
            network = (
                EnterpriseNetwork(config=NetworkConfig(num_gateways=num_gateways))
                if num_gateways > 1
                else EnterpriseNetwork()
            )
        elif len(network.gateways) != num_gateways:
            raise ValueError(
                f"deployment wants {num_gateways} gateway(s) but the network "
                f"has {len(network.gateways)}; build the EnterpriseNetwork with "
                f"NetworkConfig(num_gateways={num_gateways})"
            )
        self.network = network
        self.cost_model = cost_model or CostModel()
        self.index_width = index_width
        self.context_manager_mode = context_manager_mode
        self.tag_replay_hardening = tag_replay_hardening
        self.enforcer_shards = enforcer_shards
        self.num_gateways = num_gateways

        self.database = SignatureDatabase()
        self.offline_analyzer = OfflineAnalyzer(self.database)
        enforcer_kwargs = dict(
            database=self.database,
            # Not `policy or ...`: an *empty* Policy is falsy (__len__)
            # and must still be kept by reference.
            policy=policy if policy is not None else Policy.allow_all(),
            drop_untagged=drop_untagged,
            drop_unknown_apps=drop_unknown_apps,
            index_width=index_width,
            # Per-packet audit records are the default; fleet-scale
            # replays turn them off to keep the hot path lean.
            keep_records=keep_records,
        )
        self.sanitizer = PacketSanitizer()
        #: The replicated-gateway runtime; None for the classic
        #: single-gateway deployment.
        self.fleet = None
        if num_gateways > 1:
            # Imported lazily: the fleet builds on sharding, which sits on
            # the netstack package — a module-level import would be circular.
            from repro.core.fleet import GatewayFleet

            initial_policy = enforcer_kwargs.pop("policy")
            self.fleet = GatewayFleet(
                policy=initial_policy,
                num_gateways=num_gateways,
                shards_per_gateway=enforcer_shards,
                live=True,
                shard_backend=shard_backend,
                backend=gateway_backend,
                scheduler=scheduler,
                scheduler_config=scheduler_config,
                compact_every=compact_every,
                **enforcer_kwargs,
            )
            #: Head-gateway enforcer, for single-gateway call sites.
            self.enforcer = self.fleet.replicas[0].enforcer
            self.policy_store = self.fleet.store
            self.network.install_fleet_queue_chains(
                self.fleet,
                sanitizer=self.sanitizer,
                queue_latency_ms=self.cost_model.nfqueue_ms,
            )
        else:
            if enforcer_shards > 1:
                # Imported lazily: sharding builds on the enforcer, which in
                # turn sits on the netstack package, so a module-level import
                # here would be circular.
                from repro.netstack.sharding import ShardedEnforcer

                self.enforcer = ShardedEnforcer(
                    num_shards=enforcer_shards,
                    backend=shard_backend,
                    scheduler=scheduler,
                    scheduler_config=scheduler_config,
                    **enforcer_kwargs,
                )
            else:
                if scheduler != "static":
                    raise ValueError(
                        "the adaptive batch scheduler needs a worker pool; "
                        "build with num_gateways > 1 or enforcer_shards > 1 "
                        "and the matching *_backend='pool'"
                    )
                self.enforcer = PolicyEnforcer(**enforcer_kwargs)
            #: The versioned control plane for the gateway's policy.  Seeded
            #: from the enforcer's initial rules (push=False: the enforcer
            #: already holds them), it fans versioned deltas out to every
            #: enforcer shard on :meth:`apply_update`.
            self.policy_store = PolicyStore.from_policy(enforcer_kwargs["policy"])
            self.policy_store.compact_every = compact_every
            self.policy_store.subscribe(self.enforcer, push=False)
            # A pool-backed sharded enforcer wants the id-addressed store so
            # policy edits reach its live workers as compact delta records.
            attach_control = getattr(self.enforcer, "attach_control", None)
            if attach_control is not None:
                attach_control(self.policy_store)
            self.network.install_queue_chain(
                enforcer=self.enforcer,
                sanitizer=self.sanitizer,
                queue_latency_ms=self.cost_model.nfqueue_ms,
            )
        self.devices: list[ProvisionedDevice] = []

    # -- policy management -------------------------------------------------------------

    @property
    def policy(self) -> Policy:
        return self.enforcer.policy

    @property
    def policy_version(self) -> int:
        """The control plane's monotonic policy version."""
        return self.policy_store.version

    def set_policy(self, policy: Policy) -> None:
        """Update the centrally managed policy (one spot for all devices).

        Compatibility shim over the control plane: records a full
        replacement in the :attr:`policy_store` (one version bump) and
        hands the caller's Policy *object* to the enforcer by reference,
        so legacy in-place ``add_rule`` edits keep taking effect.  For
        incremental edits that keep unaffected flow caches warm, use
        :meth:`apply_update`.

        On a multi-gateway deployment the replacement replicates through
        the delta log as a sync record; replica gateways hold their own
        parsed copies, so the by-reference in-place-edit contract only
        extends to the head gateway — fleet deployments should prefer
        :meth:`apply_update` for all edits.
        """
        self.policy_store.reset_to(policy)

    def apply_update(self, update: PolicyUpdate) -> PolicyDelta:
        """Apply a batched policy delta live at the gateway.

        The store commits the transaction, bumps the version, and every
        enforcer shard recompiles only the apps the changed rules can
        touch — unaffected hot flows keep their cached verdicts.
        """
        return self.policy_store.apply(update)

    # -- fleet scale-out ---------------------------------------------------------------

    def add_gateway(self):
        """Bring one more gateway into a fleet deployment, live.

        The new gateway replica bootstraps from the policy store's delta
        log (base snapshot + suffix — O(suffix) with retention enabled,
        not O(history)), the network grows a border gateway, and its
        enforcement chain is installed so flow-hash routing immediately
        spreads traffic across the enlarged fleet.
        """
        if self.fleet is None:
            raise ValueError(
                "add_gateway needs a fleet deployment; build with num_gateways > 1"
            )
        replica = self.fleet.add_gateway()
        gateway_index = len(self.network.gateways)
        self.network.add_gateway()
        self.network.install_queue_chain(
            enforcer=replica.enforcer,
            sanitizer=self.sanitizer,
            queue_latency_ms=self.cost_model.nfqueue_ms,
            gateway_index=gateway_index,
        )
        self.num_gateways += 1
        return replica

    # -- telemetry ---------------------------------------------------------------------

    def attach_telemetry(self, auditor) -> None:
        """Publish every gateway's enforcement records into ``auditor``.

        ``auditor`` exposes ``pipeline_for(gateway_name)`` (canonically
        a :class:`~repro.telemetry.pipeline.FleetAuditor`); fleet
        deployments get one pipeline per gateway, single-gateway
        deployments one pipeline named ``gw0``.
        """
        if self.fleet is not None:
            self.fleet.attach_telemetry(auditor)
        else:
            self.enforcer.attach_audit_sink(auditor.pipeline_for("gw0"), "gw0")

    def attach_ops(self, control_plane) -> None:
        """Wire an operator control plane into this deployment.

        ``control_plane`` exposes an ``auditor`` (canonically a
        :class:`repro.ops.console.OperatorControlPlane`, duck-typed so
        core never imports ops).  The control plane owns the
        consumer-side wiring — alert bus, routing, federation — and
        this call attaches its auditor to the data plane, fleet or
        single-gateway alike.
        """
        self.attach_telemetry(control_plane.auditor)

    # -- app enrolment -------------------------------------------------------------------

    def enroll_app(self, apk: ApkFile) -> None:
        """Run the Offline Analyzer over a new app the enterprise wants to manage."""
        self.offline_analyzer.analyze(apk)

    def enroll_apps(self, apks: list[ApkFile]) -> None:
        self.offline_analyzer.analyze_batch(apks)

    # -- device provisioning -----------------------------------------------------------------

    def provision_device(
        self,
        name: str = "byod-device",
        network_mode: NetworkMode = NetworkMode.TAP,
        native_hooking: bool = False,
    ) -> ProvisionedDevice:
        """Create a provisioned device: patched kernel, Xposed, Context Manager.

        ``native_hooking`` enables the Frida-style extension discussed in
        the paper's §VII, letting the Context Manager also tag sockets
        opened from native code.
        """
        device = Device(
            name=name,
            network=self.network,
            kernel_config=KernelConfig(
                allow_unprivileged_ip_options=True,
                enforce_setsockopt_once=self.tag_replay_hardening,
            ),
            cost_model=self.cost_model,
            network_mode=network_mode,
            xposed_installed=True,
            native_hooking=native_hooking,
        )
        context_manager = ContextManager(
            device=device, mode=self.context_manager_mode, index_width=self.index_width
        )
        context_manager.install()
        provisioned = ProvisionedDevice(device=device, context_manager=context_manager)
        self.devices.append(provisioned)
        return provisioned

    # -- convenience -----------------------------------------------------------------------------

    def install_and_launch(
        self, provisioned: ProvisionedDevice, apk: ApkFile, behavior: AppBehavior
    ):
        """Enroll, install and launch an app on a provisioned device in one call."""
        self.enroll_app(apk)
        provisioned.device.install(apk, behavior)
        return provisioned.device.launch(apk.package_name)

    def reset_observations(self) -> None:
        """Clear captures, enforcement records and server state between runs."""
        self.network.reset_observations()
        if self.fleet is not None:
            self.fleet.reset()
        else:
            self.enforcer.reset()
