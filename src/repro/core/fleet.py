"""The gateway fleet: N replicated gateways behind one policy delta log.

The paper deploys a single gateway in front of a single BYOD device; an
enterprise serving millions of users runs *fleets* of them — one
enforcement gateway per site or per load-balancer bucket — that must all
enforce the same policy at the same version.  This module is the fleet
runtime on top of the two primitives the control plane provides:

* every gateway is a :class:`~repro.core.policy_store.GatewayReplica`
  subscribed to one shared :class:`~repro.core.policy_store.PolicyStore`
  and its :class:`~repro.core.policy_store.DeltaLog`, so policy edits
  commit once and converge everywhere (live push, or staged
  :meth:`GatewayFleet.catch_up` for canary-style rollouts);
* device traffic is spread across gateways by the same deterministic
  flow hash that spreads flows across NFQUEUE shards inside one gateway
  (:func:`~repro.netstack.netfilter.flow_hash`), so every packet of a
  flow always reaches the same gateway — two levels of the same
  balancing scheme.

Because replicas converge to fingerprint-identical rule tables and each
gateway's enforcer is verdict-deterministic, a converged fleet is
verdict-identical to one big gateway processing the whole stream; the
fleet experiment (:mod:`repro.experiments.fleet`) asserts exactly that.
"""

from __future__ import annotations

import logging
import time
import weakref
from dataclasses import dataclass, field

from repro.core.policy import Policy
from repro.core.policy_enforcer import EnforcerStats, PolicyEnforcer
from repro.core.policy_store import (
    DeltaLog,
    GatewayReplica,
    PolicyDelta,
    PolicyStore,
    PolicyUpdate,
)
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict, flow_hash
from repro.netstack.sharding import ShardedEnforcer
from repro.runtime.pool import GatewayWorkerPool, WorkerPoolError, fork_available

logger = logging.getLogger(__name__)

#: Supported :meth:`GatewayFleet.process_batch_timed` execution backends.
FLEET_BACKENDS = ("sequential", "pool")


@dataclass
class FleetBatchResult:
    """Outcome of one :meth:`GatewayFleet.process_batch_timed` burst.

    ``results`` preserves the input packet order.  Gateways are
    independent deployments, so the modelled parallel wall-clock of the
    burst is the slowest gateway; for sharded gateways each gateway's
    elapsed time is itself the modelled parallel wall of its shards, so
    the fleet number composes both balancing levels.
    """

    results: list[tuple[Verdict, IPPacket]]
    gateway_elapsed_s: list[float]
    gateway_packet_counts: list[int]
    backend: str = "sequential"
    #: End-to-end measured wall-clock of the burst (``pool`` backend:
    #: submit-to-harvest including IPC; ``sequential``: 0.0, the burst
    #: ran in-process and only the model applies).
    measured_wall_s: float = 0.0

    @property
    def parallel_wall_s(self) -> float:
        return max(self.gateway_elapsed_s, default=0.0)

    @property
    def serial_wall_s(self) -> float:
        return sum(self.gateway_elapsed_s)

    @property
    def packets(self) -> int:
        return len(self.results)


class GatewayFleet:
    """N gateway replicas converging from one store, balanced by flow hash.

    Each gateway gets its own enforcer (a plain
    :class:`~repro.core.policy_enforcer.PolicyEnforcer`, or a
    :class:`~repro.netstack.sharding.ShardedEnforcer` when
    ``shards_per_gateway > 1``) wrapped in a
    :class:`~repro.core.policy_store.GatewayReplica` attached to the
    shared ``store``.  With ``live=True`` every replica is subscribed to
    the store and converges synchronously on each commit; with
    ``live=False`` replicas lag until :meth:`catch_up` — the staged-
    rollout mode the fleet experiment uses to measure convergence lag.
    """

    def __init__(
        self,
        database,
        policy: Policy | None = None,
        store: PolicyStore | None = None,
        num_gateways: int = 2,
        shards_per_gateway: int = 1,
        live: bool = True,
        shard_backend: str = "sequential",
        backend: str = "sequential",
        compact_every: int | None = None,
        scheduler: str = "static",
        scheduler_config=None,
        **enforcer_kwargs,
    ) -> None:
        if num_gateways < 1:
            raise ValueError("a gateway fleet needs at least one gateway")
        if store is not None and policy is not None:
            raise ValueError("pass either a policy or an existing store, not both")
        if backend not in FLEET_BACKENDS:
            raise ValueError(
                f"unknown fleet backend {backend!r}; choose from {FLEET_BACKENDS}"
            )
        from repro.runtime.scheduler import BatchScheduler, validate_scheduler

        validate_scheduler(scheduler)
        if scheduler == "adaptive" and backend != "pool":
            raise ValueError("the adaptive batch scheduler needs backend='pool'")
        #: ``"static"`` (one batch per gateway per burst) or ``"adaptive"``.
        self.scheduler_mode = scheduler
        #: The live :class:`~repro.runtime.scheduler.BatchScheduler`
        #: (None in static mode); ``attach_monitor`` a health monitor on
        #: it so backlog alerts snap batch sizes to the floor.
        self.scheduler = (
            BatchScheduler(
                num_workers=num_gateways,
                config=scheduler_config,
                pool="gateway-pool",
            )
            if scheduler == "adaptive"
            else None
        )
        if backend == "pool" and shard_backend != "sequential":
            # Gateway workers fork whole replicas; an enforcer holding
            # its own active pool (or forking per batch) inside that
            # fork would inherit dead pipe ends — shards run serially
            # in-process inside each gateway worker instead.
            raise ValueError(
                "the gateway pool backend runs each gateway's shards "
                "in-process; use shard_backend='sequential'"
            )
        self.requested_backend = backend
        self.degraded = False
        self._local_stats = EnforcerStats()
        if backend == "pool" and not fork_available():
            logger.warning(
                "fleet backend 'pool' needs the fork start method, which this "
                "platform lacks; degrading to sequential execution"
            )
            self.degraded = True
            self._local_stats.backend_fallbacks += 1
            backend = "sequential"
        self.backend = backend
        self._pool = None
        self._pool_finalizer = None
        self._obs = None
        # Degraded-pool pipelined bursts run synchronously at submit time
        # and buffer their results here until collected by token.
        self._sync_bursts: dict[int, FleetBatchResult] = {}
        self._next_sync_token = 0
        if store is None:
            store = PolicyStore.from_policy(
                policy if policy is not None else Policy.allow_all(), name="fleet-policy"
            )
        if compact_every is not None:
            store.compact_every = compact_every
        self.store = store
        self.database = database
        self.num_gateways = num_gateways
        self.shards_per_gateway = shards_per_gateway
        self.live = live
        self._shard_backend = shard_backend
        self._enforcer_kwargs = dict(enforcer_kwargs)
        self._auditor = None
        self.replicas: list[GatewayReplica] = []
        for index in range(num_gateways):
            replica = GatewayReplica(
                enforcer=self._build_enforcer(), store=store, name=f"gw{index}"
            )
            if live:
                store.subscribe_replica(replica)
            self.replicas.append(replica)

    def _build_enforcer(self):
        """One gateway's enforcer, per the fleet-wide shard configuration."""
        if self.shards_per_gateway > 1:
            return ShardedEnforcer(
                database=self.database,
                policy=None,
                num_shards=self.shards_per_gateway,
                backend=self._shard_backend,
                **self._enforcer_kwargs,
            )
        return PolicyEnforcer(database=self.database, policy=None, **self._enforcer_kwargs)

    # -- policy management -----------------------------------------------------------

    @property
    def delta_log(self) -> DeltaLog:
        return self.store.delta_log

    def apply_update(self, update: PolicyUpdate) -> PolicyDelta:
        """Commit one transaction at the store; live replicas converge now,
        lagging replicas on their next :meth:`catch_up`."""
        return self.store.apply(update)

    def catch_up(self, target_version: int | None = None) -> dict[str, int]:
        """Replay missing log records on every replica; returns how many
        records each applied (the per-gateway convergence work)."""
        return {
            replica.name: replica.catch_up(self.store.delta_log, target_version)
            for replica in self.replicas
        }

    def set_live(self, live: bool) -> None:
        """Switch between synchronous replication and staged catch-up.

        ``live=False`` detaches every replica from the store's push path
        (commits accumulate in the delta log and replicas lag until
        :meth:`catch_up`); ``live=True`` re-subscribes them, catching
        each up first so subscription leaves the fleet converged.
        """
        self.live = live
        for replica in self.replicas:
            self.store.unsubscribe_replica(replica)
        if live:
            for replica in self.replicas:
                self.store.subscribe_replica(replica)

    def add_gateway(self, name: str | None = None) -> GatewayReplica:
        """Attach a late-joining gateway, bootstrapping from the delta log.

        The new replica converges from the serialized log alone — the
        base snapshot (one full sync) plus the surviving delta suffix —
        so with a compacted log (``compact_every``) attach cost is
        O(suffix) records no matter how many versions the fleet has
        committed.  It then joins flow-hash routing, and the live push
        path if the fleet is live.
        """
        # Flow-hash routing and the worker set both change shape; fresh
        # workers (including one for the joiner) fork at the next burst.
        self._restart_pool()
        replica = GatewayReplica.from_log(
            self._build_enforcer(),
            self.store.delta_log,
            name=name or f"gw{len(self.replicas)}",
            compact_every=self.store.compact_every,
        )
        if self._auditor is not None:
            # The fleet's telemetry contract extends to late joiners:
            # flow hashing reassigns traffic to the new gateway at once,
            # so its decisions must publish from the first packet.
            replica.enforcer.attach_audit_sink(
                self._auditor.pipeline_for(replica.name), replica.name
            )
        if self._obs is not None:
            # Same contract for observability: the joiner's enforcement
            # reports from its first packet.
            self._wire_obs(replica)
        if self.live:
            self.store.subscribe_replica(replica)
        self.replicas.append(replica)
        self.num_gateways += 1
        return replica

    def lags(self) -> dict[str, int]:
        """Versions-behind-head for every gateway (0 when converged)."""
        return {replica.name: replica.lag(self.store.delta_log) for replica in self.replicas}

    def policy_versions(self) -> dict[str, int]:
        return {replica.name: replica.version for replica in self.replicas}

    @property
    def converged(self) -> bool:
        """True when every gateway holds the store's exact state."""
        return all(replica.verify_against(self.store) for replica in self.replicas)

    def fingerprints(self) -> dict[str, str]:
        return {replica.name: replica.fingerprint() for replica in self.replicas}

    # -- telemetry ---------------------------------------------------------------------

    def attach_telemetry(self, auditor) -> None:
        """Wire one telemetry pipeline per gateway out of ``auditor``.

        ``auditor`` is anything exposing ``pipeline_for(gateway_name)``
        — canonically a :class:`~repro.telemetry.pipeline.FleetAuditor`
        (duck-typed so the core package does not depend on telemetry).
        Each replica's enforcer publishes every decision into its own
        gateway pipeline, labelled with the replica name; the publish
        cost lands inside that gateway's wall-clock, exactly like every
        other per-gateway cost in the parallel model.  The auditor is
        kept so gateways added later (:meth:`add_gateway`) publish too.
        """
        # Pool workers install their record-capture hooks at fork time;
        # a pipeline attached afterwards would go unseen, so respawn
        # (fails fast, before any replica is touched, if bursts are
        # outstanding).
        self._restart_pool()
        self._auditor = auditor
        for replica in self.replicas:
            replica.enforcer.attach_audit_sink(
                auditor.pipeline_for(replica.name), replica.name
            )

    def _wire_obs(self, replica) -> None:
        enforcer = replica.enforcer
        if hasattr(enforcer, "attach_obs"):
            enforcer.attach_obs(self._obs)
        else:
            enforcer.attach_observability(
                None if self._obs is None else self._obs.enforcer
            )

    def attach_obs(self, obs) -> None:
        """Attach (or detach, with ``None``) a
        :class:`~repro.obs.instrument.RuntimeObservability` fleet-wide.

        Every gateway's enforcer gets sampled per-stage latency; the
        pool backend additionally traces each burst batch (serialize →
        ring write → queue wait → enforce → fold) and folds worker-local
        registry deltas back into ``obs.registry``.  Pool workers fork
        with instrumentation in place, so the pool restarts (refusing
        while pipelined bursts are outstanding).
        """
        self._restart_pool()
        self._obs = obs
        if self.scheduler is not None and obs is not None:
            self.scheduler.bind_obs(obs)
        for replica in self.replicas:
            self._wire_obs(replica)

    def pool_health(self):
        """Live :class:`~repro.obs.health.PoolHealthSnapshot` of the
        gateway pool, or None when no pool is running."""
        return self._pool.health() if self._pool is not None else None

    def attach_ops(self, control_plane) -> None:
        """Wire the operator control plane's telemetry onto every gateway.

        ``control_plane`` is anything exposing an ``auditor`` attribute
        (canonically a :class:`repro.ops.console.OperatorControlPlane`,
        duck-typed so core never depends on ops); the control plane has
        already attached its alert bus and federation to that auditor —
        this call is the data-plane half of the wiring.
        """
        self.attach_telemetry(control_plane.auditor)

    # -- flow routing ------------------------------------------------------------------

    def gateway_index(self, packet: IPPacket) -> int:
        """The gateway this packet's flow is pinned to (stable per flow).

        Uses the same flow hash that spreads flows across NFQUEUE shards
        inside a gateway, so the two balancing levels compose without
        re-hashing collisions pinning whole gateways to one shard.
        """
        return flow_hash(packet) % self.num_gateways

    def replica_for(self, packet: IPPacket) -> GatewayReplica:
        return self.replicas[self.gateway_index(packet)]

    # -- data plane --------------------------------------------------------------------

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        return self.replica_for(packet).enforcer.process(packet)

    def process_batch(self, packets: list[IPPacket]) -> list[tuple[Verdict, IPPacket]]:
        """Process a burst across the fleet, preserving input order."""
        return self.process_batch_timed(packets).results

    def process_batch_timed(self, packets: list[IPPacket]) -> FleetBatchResult:
        """Process a burst gateway-by-gateway, modelling fleet wall-clock.

        Packets are grouped by gateway, each group runs on its gateway's
        enforcer (sharded gateways model their own internal parallelism),
        and verdicts are stitched back into input order.  With
        ``backend="pool"`` the gateways genuinely run in parallel as
        persistent workers (see :meth:`submit_burst` for the pipelined
        form) and ``measured_wall_s`` is the real end-to-end elapsed
        time of the burst.
        """
        if self.backend == "pool" and packets:
            return self.collect_burst(self.submit_burst(packets))
        groups: list[list[int]] = [[] for _ in range(self.num_gateways)]
        for position, packet in enumerate(packets):
            groups[self.gateway_index(packet)].append(position)

        results: list[tuple[Verdict, IPPacket] | None] = [None] * len(packets)
        elapsed: list[float] = []
        for replica, positions in zip(self.replicas, groups):
            group = [packets[position] for position in positions]
            enforcer = replica.enforcer
            if hasattr(enforcer, "process_batch_timed"):
                batch = enforcer.process_batch_timed(group)
                processed = batch.results
                elapsed.append(batch.parallel_wall_s)
            else:
                started = time.perf_counter()
                processed = enforcer.process_batch(group)
                elapsed.append(time.perf_counter() - started)
            for position, result in zip(positions, processed):
                results[position] = result
        return FleetBatchResult(
            results=[result for result in results if result is not None],
            gateway_elapsed_s=elapsed,
            gateway_packet_counts=[len(positions) for positions in groups],
        )

    # -- persistent gateway workers ----------------------------------------------------

    def _ensure_pool(self) -> GatewayWorkerPool:
        if self._pool is None:
            if self.scheduler is not None and self._obs is None:
                # The adaptive scheduler is driven by the obs layer's
                # batch traces and histograms; give it a private bundle
                # when the caller did not attach one.
                from repro.obs.instrument import RuntimeObservability

                self.attach_obs(RuntimeObservability())
            self._pool = GatewayWorkerPool(self.replicas, obs=self._obs)
            if self.scheduler is not None:
                self.scheduler.bind_obs(self._obs)
            # The finalizer holds only the pool (not self): leaked
            # fleets still reap their daemon workers at GC.
            self._pool_finalizer = weakref.finalize(self, self._pool.close)
        return self._pool

    def _restart_pool(self, drop_outstanding: bool = False) -> None:
        """Tear the gateway pool down (fresh workers fork at the next
        burst).  Refuses while pipelined bursts are outstanding — their
        verdicts would be silently lost — except from an explicit
        :meth:`close`."""
        if self._pool is not None:
            if self._pool.outstanding and not drop_outstanding:
                raise WorkerPoolError(
                    f"{self._pool.outstanding} pipelined burst(s) still "
                    "outstanding; collect them before reconfiguring the fleet"
                )
            self._local_stats.merge(self._pool.stats)
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.close()
            self._pool = None

    def close(self) -> None:
        """Stop gateway pool workers, if any.  Safe on any backend.

        Uncollected pipelined bursts are discarded — the caller is
        ending the fleet's life, so there is nowhere to deliver them.
        """
        self._restart_pool(drop_outstanding=True)

    def submit_burst(self, packets: list[IPPacket]) -> int:
        """Hand a burst to the gateway workers without waiting.

        Each worker is first caught up from the delta log **to its own
        parent replica's version** — live replicas push workers to the
        head, staged (canary) replicas hold their workers at the staged
        version — then the burst is routed.  The parent is free to
        commit edits, drain telemetry or catch replicas up while the
        workers enforce; pipe FIFO order keeps the worker-side replay of
        records and batches in exactly the serial interleaving.

        Pipelining is a pool-backend feature: a fleet that asked for the
        pool but degraded (no fork start method) runs the burst
        synchronously right here and :meth:`collect_burst` hands back
        the buffered result — the rollout still runs, just in-process.
        An explicitly sequential fleet raises.
        """
        if self.backend != "pool":
            self._check_pipelined_backend()
            token = self._next_sync_token
            self._next_sync_token += 1
            self._sync_bursts[token] = self.process_batch_timed(packets)
            return token
        pool = self._ensure_pool()
        pool.push_log(
            self.store.delta_log,
            [replica.version for replica in self.replicas],
        )
        sizes = None if self.scheduler is None else self.scheduler.plan()
        return pool.submit(packets, batch_sizes=sizes)

    def collect_burst(self, token: int | None = None) -> FleetBatchResult:
        """Harvest a submitted burst (default: the oldest outstanding)."""
        if self.backend != "pool":
            self._check_pipelined_backend()
            if not self._sync_bursts:
                raise WorkerPoolError("no outstanding burst to collect")
            if token is None:
                token = min(self._sync_bursts)
            if token not in self._sync_bursts:
                raise WorkerPoolError(
                    f"unknown or already-collected burst token {token}"
                )
            return self._sync_bursts.pop(token)
        burst = self._ensure_pool().collect(token)
        return FleetBatchResult(
            results=burst.results,
            gateway_elapsed_s=burst.worker_elapsed_s,
            gateway_packet_counts=burst.worker_packet_counts,
            backend="pool",
            measured_wall_s=burst.wall_s,
        )

    def _check_pipelined_backend(self) -> None:
        if not (self.degraded and self.requested_backend == "pool"):
            raise ValueError(
                "pipelined bursts need backend='pool'; this fleet runs "
                f"backend={self.backend!r}"
            )

    # -- aggregated inspection ----------------------------------------------------------

    def aggregate_stats(self) -> EnforcerStats:
        """Every gateway's counters folded into one fleet-wide view,
        plus runtime-level counters (pool health, degradation)."""
        total = EnforcerStats()
        for replica in self.replicas:
            total.merge(replica.enforcer.stats)
        total.merge(self._local_stats)
        if self._pool is not None:
            total.merge(self._pool.stats)
        return total

    def reset(self) -> None:
        # Worker-side state cannot rewind in place; fresh forks at the
        # next pool burst start from the reset replicas.  The restart
        # fails fast (outstanding bursts) before any replica is touched.
        self._restart_pool()
        for replica in self.replicas:
            replica.enforcer.reset()
        self._local_stats = EnforcerStats()
        if self.degraded:
            self._local_stats.backend_fallbacks += 1
