"""On-wire encoding of execution context.

The Context Manager must squeeze an app identifier plus a stack trace
into the 40-byte IP options field (minus the option's own type and
length bytes — 38 bytes of usable data).  The paper's scheme (§IV-A1,
§VII):

* the app is identified by the first 8 bytes of its apk's md5;
* each stack frame is replaced by the *index* of its method signature
  in the app's deterministic signature ordering, 2 bytes per frame;
* apps with more than 65,536 methods (multi-dex) need wider indexes;
  the discussion proposes a variable-length encoding using one bit to
  select 2- or 3-byte indexes, which :class:`IndexWidth.VARIABLE`
  implements.

With the fixed 2-byte width, 8 + 2·n ≤ 38 allows up to 15 frames per
tag; deeper stacks are truncated keeping the innermost frames, which are
the ones closest to the network call and therefore the most
discriminative for policy purposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netstack.ip import BORDERPATROL_OPTION_TYPE, IPOptions, MAX_IP_OPTIONS_BYTES

#: Usable payload bytes inside a single IP option (type and length bytes excluded).
MAX_OPTION_DATA_BYTES = MAX_IP_OPTIONS_BYTES - 2

#: Bytes of the truncated apk hash carried in every tag.
APP_ID_BYTES = 8


class EncodingError(ValueError):
    """Raised when a context tag cannot be encoded or decoded."""


class IndexWidth(enum.Enum):
    """How method-signature indexes are laid out on the wire."""

    #: Fixed two bytes per frame (the prototype's scheme; max 65,536 methods).
    FIXED_2 = "fixed-2"
    #: One flag bit selects a 2- or 3-byte index (multi-dex support, §VII).
    VARIABLE = "variable"


@dataclass(frozen=True)
class ContextTag:
    """The decoded content of a BorderPatrol IP option."""

    app_id: str
    indexes: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(bytes.fromhex(self.app_id)) != APP_ID_BYTES:
            raise EncodingError(f"app id must be {APP_ID_BYTES} bytes of hex")
        for index in self.indexes:
            if index < 0:
                raise EncodingError("method indexes cannot be negative")

    @property
    def frame_count(self) -> int:
        return len(self.indexes)


class StackTraceEncoder:
    """Encode / decode context tags to and from IP option bytes."""

    def __init__(self, index_width: IndexWidth = IndexWidth.FIXED_2) -> None:
        self.index_width = index_width

    # -- capacity ---------------------------------------------------------------

    def max_frames(self) -> int:
        """Upper bound on how many frames fit in one tag (fixed-width only)."""
        budget = MAX_OPTION_DATA_BYTES - APP_ID_BYTES
        if self.index_width is IndexWidth.FIXED_2:
            return budget // 2
        # Variable width: worst case every index needs 3 bytes.
        return budget // 3

    def fit_indexes(self, indexes: list[int] | tuple[int, ...]) -> tuple[int, ...]:
        """Truncate ``indexes`` (innermost first) so the tag fits in the option."""
        kept: list[int] = []
        budget = MAX_OPTION_DATA_BYTES - APP_ID_BYTES
        used = 0
        for index in indexes:
            width = self._width_of(index)
            if used + width > budget:
                break
            kept.append(index)
            used += width
        return tuple(kept)

    def _width_of(self, index: int) -> int:
        if self.index_width is IndexWidth.FIXED_2:
            if index >= 0x1_0000:
                raise EncodingError(
                    f"index {index} does not fit in 2 bytes; the app needs the "
                    "variable-width encoding (multi-dex limitation, paper §VII)"
                )
            return 2
        return 2 if index < 0x8000 else 3

    # -- encoding -----------------------------------------------------------------

    def encode(self, app_id: str, indexes: list[int] | tuple[int, ...]) -> bytes:
        """Encode the app identifier and frame indexes into option payload bytes."""
        app_bytes = bytes.fromhex(app_id)
        if len(app_bytes) != APP_ID_BYTES:
            raise EncodingError(f"app id must be {APP_ID_BYTES} bytes of hex")
        fitted = self.fit_indexes(indexes)
        body = bytearray(app_bytes)
        for index in fitted:
            width = self._width_of(index)
            if self.index_width is IndexWidth.FIXED_2:
                body += index.to_bytes(2, "big")
            elif width == 2:
                body += index.to_bytes(2, "big")
            else:
                if index >= 0x40_0000:
                    raise EncodingError(f"index {index} exceeds the 3-byte variable encoding")
                body += (0x80_0000 | index).to_bytes(3, "big")
        if len(body) > MAX_OPTION_DATA_BYTES:
            raise EncodingError("encoded tag exceeds the IP option capacity")
        return bytes(body)

    def encode_option(self, app_id: str, indexes: list[int] | tuple[int, ...]) -> IPOptions:
        """Encode straight into an :class:`IPOptions` value ready for setsockopt."""
        return IPOptions.single(BORDERPATROL_OPTION_TYPE, self.encode(app_id, indexes))

    # -- decoding -------------------------------------------------------------------

    def decode(self, data: bytes) -> ContextTag:
        """Decode option payload bytes back into a :class:`ContextTag`."""
        if len(data) < APP_ID_BYTES:
            raise EncodingError("tag shorter than the app identifier")
        app_id = data[:APP_ID_BYTES].hex()
        body = data[APP_ID_BYTES:]
        indexes: list[int] = []
        position = 0
        while position < len(body):
            if self.index_width is IndexWidth.FIXED_2:
                if position + 2 > len(body):
                    raise EncodingError("truncated 2-byte index")
                indexes.append(int.from_bytes(body[position : position + 2], "big"))
                position += 2
                continue
            first = body[position]
            if first & 0x80:
                if position + 3 > len(body):
                    raise EncodingError("truncated 3-byte index")
                value = int.from_bytes(body[position : position + 3], "big") & 0x7F_FFFF
                indexes.append(value)
                position += 3
            else:
                if position + 2 > len(body):
                    raise EncodingError("truncated 2-byte index")
                indexes.append(int.from_bytes(body[position : position + 2], "big"))
                position += 2
        return ContextTag(app_id=app_id, indexes=tuple(indexes))

    @staticmethod
    def extract_tag_bytes(options: IPOptions) -> bytes | None:
        """The raw BorderPatrol option payload, without decoding it.

        The enforcement fast path keys its conntrack-style flow cache on
        these bytes: a cache hit skips index decoding and policy
        evaluation entirely, so extraction must not pay for either.
        """
        option = options.find(BORDERPATROL_OPTION_TYPE)
        if option is None:
            return None
        return option.data

    def decode_options(self, options: IPOptions) -> ContextTag | None:
        """Extract and decode the BorderPatrol option from a packet's options."""
        data = self.extract_tag_bytes(options)
        if data is None:
            return None
        return self.decode(data)
