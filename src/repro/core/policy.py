"""Policy model, grammar and evaluation.

The paper defines (§IV-B) policies as triples of an *action* (allow or
deny), an *enforcement level* (hash < library < class < method, ordered
by granularity) and a *target* (a search string matched against the
app hash or the method signatures of a packet's decoded stack trace).

Evaluation rules, with ``s`` ranging over the stack signatures in the
packet header and ``ℓθ`` the level at which the target matches ``s``:

* ``deny``  — drop the packet if **there exists** an ``s`` whose match
  level is at least the rule's level (blacklisting);
* ``allow`` — the packet may pass only if **every** ``s`` matches the
  target at the rule's level or higher (whitelisting).

A policy is an ordered collection of such rules plus a default action.
Deny rules are authoritative: any triggered deny drops the packet.  If
the policy contains allow rules, at least one of them must be satisfied
for the packet to pass (whitelist mode); otherwise the default action
applies.

The concrete grammar of the paper's Snippet 1 is supported verbatim::

    {[deny][library]["com/flurry"]}
    {[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult"]}
    {[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.dex.signature import MethodSignature
from repro.netstack.netfilter import Verdict


class PolicyParseError(ValueError):
    """Raised when policy text does not follow the Snippet 1 grammar."""


class FrozenPolicyError(TypeError):
    """Raised on in-place mutation of an immutable policy snapshot.

    Snapshots handed out by :class:`repro.core.policy_store.PolicyStore`
    are derived state; mutating one in place would silently desynchronise
    it from the store's rule table and version counter.  Route edits
    through :meth:`~repro.core.policy_store.PolicyStore.apply` instead.
    """


class PolicyAction(str, enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


class PolicyLevel(enum.IntEnum):
    """Enforcement granularity, ordered: hash < library < class < method."""

    HASH = 1
    LIBRARY = 2
    CLASS = 3
    METHOD = 4

    @classmethod
    def parse(cls, text: str) -> "PolicyLevel":
        try:
            return cls[text.strip().upper()]
        except KeyError as exc:
            raise PolicyParseError(f"unknown policy level: {text!r}") from exc


@dataclass(frozen=True)
class DecodedContext:
    """What the Policy Enforcer reconstructs from one packet's tag."""

    app_id: str
    signatures: tuple[str, ...]
    app_md5: str = ""
    package_name: str = ""

    @property
    def parsed_signatures(self) -> tuple[MethodSignature, ...]:
        parsed = []
        for signature in self.signatures:
            try:
                parsed.append(MethodSignature.parse(signature))
            except ValueError:
                continue
        return tuple(parsed)


def _normalise(text: str) -> str:
    return text.strip().strip("/").replace(".", "/")


def match_level(target: str, signature: str) -> PolicyLevel | None:
    """Highest granularity at which ``target`` matches ``signature``.

    Returns None when the target does not match at all.  The target is
    interpreted the way the paper's examples use it: a slash-separated
    package/class prefix, or a full (possibly return-type-less) method
    signature string.
    """
    try:
        parsed = MethodSignature.parse(signature)
    except ValueError:
        return None
    stripped_target = target.strip()
    # Method-level: the target is (a prefix of) the full signature string.
    if "->" in stripped_target:
        if str(parsed).startswith(stripped_target.rstrip(";")) or str(parsed) == stripped_target:
            return PolicyLevel.METHOD
        return None
    normalised_target = _normalise(stripped_target)
    slash_class = parsed.slash_class
    if slash_class == normalised_target:
        return PolicyLevel.CLASS
    if slash_class.startswith(normalised_target + "/") or parsed.library == normalised_target:
        return PolicyLevel.LIBRARY
    if parsed.library.startswith(normalised_target + "/"):
        return PolicyLevel.LIBRARY
    return None


@dataclass(frozen=True)
class PolicyRule:
    """One ``{[action][level][target]}`` rule."""

    action: PolicyAction
    level: PolicyLevel
    target: str
    comment: str = ""

    def __post_init__(self) -> None:
        if not self.target:
            raise PolicyParseError("policy rules need a non-empty target")

    # -- matching ------------------------------------------------------------------

    def _hash_matches(self, context: DecodedContext) -> bool:
        target = self.target.lower()
        return target in (context.app_id.lower(), context.app_md5.lower())

    def hash_matches_entry(self, entry) -> bool:
        """HASH-level comparison against a database entry's identifiers.

        The single definition shared by compilation, delta reachability
        and the CLI compileability report, so hash-matching semantics
        can never diverge between them.
        """
        return self.target.lower() in (entry.app_id.lower(), entry.md5.lower())

    def signature_matches(self, signature: str) -> bool:
        """True if the target matches ``signature`` at this rule's level or higher."""
        if self.level is PolicyLevel.HASH:
            return False
        level = match_level(self.target, signature)
        return level is not None and level >= self.level

    def triggers_deny(self, context: DecodedContext) -> bool:
        """Deny semantics: ∃ s matching at level ≥ L (or the hash matches)."""
        if self.action is not PolicyAction.DENY:
            return False
        if self.level is PolicyLevel.HASH:
            return self._hash_matches(context)
        return any(self.signature_matches(s) for s in context.signatures)

    def touches_app(self, entry) -> bool:
        """Whether this rule can influence verdicts for ``entry``'s app.

        This is the reachability primitive behind delta compilation: a
        rule that matches none of an app's identifiers or signatures can
        never change that app's verdicts (an empty deny index set never
        triggers; an unsatisfiable allow rule is skipped — whitelist-mode
        *transitions* are handled separately by the control plane), so
        adding, removing or replacing it leaves the app's compiled policy
        and cached flow verdicts valid.  Matchers that raise are assumed
        to touch everything, matching the compile-time fallback.
        """
        if self.level is PolicyLevel.HASH:
            return self.hash_matches_entry(entry)
        try:
            return bool(entry.matching_indexes(self.signature_matches))
        except Exception:
            return True

    def satisfies_allow(self, context: DecodedContext) -> bool:
        """Allow semantics: ∀ s matching at level ≥ L (or the hash matches)."""
        if self.action is not PolicyAction.ALLOW:
            return False
        if self.level is PolicyLevel.HASH:
            return self._hash_matches(context)
        if not context.signatures:
            return False
        return all(self.signature_matches(s) for s in context.signatures)

    # -- rendering ------------------------------------------------------------------

    def render(self) -> str:
        return f'{{[{self.action.value}][{self.level.name.lower()}]["{self.target}"]}}'


@dataclass(frozen=True)
class PolicyDecision:
    """The enforcement outcome for one packet."""

    verdict: Verdict
    matched_rule: PolicyRule | None = None
    reason: str = ""

    @property
    def allowed(self) -> bool:
        return self.verdict is Verdict.ACCEPT


@dataclass
class Policy:
    """An ordered set of rules plus a default action."""

    rules: list[PolicyRule] = field(default_factory=list)
    default_action: PolicyAction = PolicyAction.ALLOW
    name: str = "policy"
    #: Bumped by :meth:`add_rule`; fast paths (compiled policies, flow
    #: caches) compare it to detect in-place rule additions.
    revision: int = field(default=0, compare=False, repr=False)
    #: True for immutable snapshots derived by the policy control plane
    #: (:class:`repro.core.policy_store.PolicyStore`); ``add_rule`` on a
    #: frozen snapshot raises instead of desynchronising the store.
    frozen: bool = field(default=False, compare=False, repr=False)

    def add_rule(self, rule: PolicyRule) -> None:
        if self.frozen:
            raise FrozenPolicyError(
                f"policy {self.name!r} is an immutable control-plane snapshot; "
                "apply a PolicyUpdate through the PolicyStore instead"
            )
        self.rules.append(rule)
        self.revision += 1

    def deny_rules(self) -> list[PolicyRule]:
        return [r for r in self.rules if r.action is PolicyAction.DENY]

    def allow_rules(self) -> list[PolicyRule]:
        return [r for r in self.rules if r.action is PolicyAction.ALLOW]

    def evaluate(self, context: DecodedContext) -> PolicyDecision:
        """Apply the paper's rule semantics to one decoded packet context."""
        for rule in self.deny_rules():
            if rule.triggers_deny(context):
                return PolicyDecision(
                    verdict=Verdict.DROP,
                    matched_rule=rule,
                    reason=f"deny rule matched: {rule.render()}",
                )
        allow_rules = self.allow_rules()
        if allow_rules:
            for rule in allow_rules:
                if rule.satisfies_allow(context):
                    return PolicyDecision(
                        verdict=Verdict.ACCEPT,
                        matched_rule=rule,
                        reason=f"allow rule satisfied: {rule.render()}",
                    )
            return PolicyDecision(
                verdict=Verdict.DROP,
                reason="whitelist mode: no allow rule satisfied",
            )
        if self.default_action is PolicyAction.ALLOW:
            return PolicyDecision(verdict=Verdict.ACCEPT, reason="default allow")
        return PolicyDecision(verdict=Verdict.DROP, reason="default deny")

    def render(self) -> str:
        return "\n".join(rule.render() for rule in self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[PolicyRule]:
        return iter(self.rules)

    # -- convenience constructors ---------------------------------------------------

    @classmethod
    def deny_libraries(cls, libraries: Iterable[str], name: str = "library-blacklist") -> "Policy":
        """A blacklist policy that denies every listed library prefix."""
        policy = cls(name=name)
        for library in libraries:
            policy.add_rule(
                PolicyRule(action=PolicyAction.DENY, level=PolicyLevel.LIBRARY, target=library)
            )
        return policy

    @classmethod
    def allow_all(cls, name: str = "allow-all") -> "Policy":
        return cls(name=name, default_action=PolicyAction.ALLOW)

    # -- compilation -----------------------------------------------------------------

    def compile(self, database) -> "CompiledPolicy":
        """Lower this policy against a signature database for fast enforcement.

        The returned :class:`CompiledPolicy` specialises every rule, per
        app, into raw method-index sets so the Policy Enforcer's hot path
        can match the integer tag indexes straight off the wire instead of
        decoding them back to signature strings first.  Compilation is
        lazy (per app, on first packet) and self-invalidating when the
        database generation changes; rules that cannot be lowered fall
        back to the string-based :meth:`evaluate` path.
        """
        return CompiledPolicy(self, database)


@dataclass(frozen=True)
class CompiledRule:
    """One policy rule lowered to one app's method-index space.

    ``hash_match`` precomputes the HASH-level comparison against the
    app's identifiers; ``index_set`` holds every signature index of the
    app that the rule's target matches at the rule's level or higher.
    """

    rule: PolicyRule
    hash_match: bool
    index_set: frozenset[int]


class CompiledAppPolicy:
    """A policy specialised to a single app's signature index space.

    :meth:`evaluate_indexes` reproduces :meth:`Policy.evaluate` —
    identical verdicts, matched rules and reason strings — using only
    integer set membership on the raw tag indexes.
    """

    __slots__ = ("app_id", "method_count", "deny", "allow", "default_action")

    def __init__(
        self,
        app_id: str,
        method_count: int,
        deny: tuple[CompiledRule, ...],
        allow: tuple[CompiledRule, ...],
        default_action: PolicyAction,
    ) -> None:
        self.app_id = app_id
        self.method_count = method_count
        self.deny = deny
        self.allow = allow
        self.default_action = default_action

    def evaluate_indexes(self, indexes: tuple[int, ...]) -> PolicyDecision:
        """Deny-∃ / allow-∀ semantics over raw method indexes."""
        for compiled in self.deny:
            if compiled.hash_match or any(i in compiled.index_set for i in indexes):
                return PolicyDecision(
                    verdict=Verdict.DROP,
                    matched_rule=compiled.rule,
                    reason=f"deny rule matched: {compiled.rule.render()}",
                )
        if self.allow:
            for compiled in self.allow:
                if compiled.hash_match or (
                    indexes and all(i in compiled.index_set for i in indexes)
                ):
                    return PolicyDecision(
                        verdict=Verdict.ACCEPT,
                        matched_rule=compiled.rule,
                        reason=f"allow rule satisfied: {compiled.rule.render()}",
                    )
            return PolicyDecision(
                verdict=Verdict.DROP,
                reason="whitelist mode: no allow rule satisfied",
            )
        if self.default_action is PolicyAction.ALLOW:
            return PolicyDecision(verdict=Verdict.ACCEPT, reason="default allow")
        return PolicyDecision(verdict=Verdict.DROP, reason="default deny")


class CompiledPolicy:
    """Per-app lowering of a :class:`Policy` against a signature database.

    Apps are compiled lazily on first lookup and cached; the cache is
    dropped whenever the database generation moves (new enrolments,
    removals), so late-enrolled apps compile on their first packet.
    """

    def __init__(self, policy: Policy, database) -> None:
        self.policy = policy
        self.database = database
        self._rules = tuple(policy.rules)
        self._default_action = policy.default_action
        self._apps: dict[str, CompiledAppPolicy | None] = {}
        self._generation = database.generation

    def for_app(self, app_id: str) -> CompiledAppPolicy | None:
        """The compiled policy for ``app_id``, or None to use the slow path."""
        if self._generation != self.database.generation:
            self._apps.clear()
            self._generation = self.database.generation
        if app_id in self._apps:
            return self._apps[app_id]
        entry = self.database.lookup_app_id(app_id)
        compiled = None if entry is None else self._compile_entry(entry)
        self._apps[app_id] = compiled
        return compiled

    def compiled_app_count(self) -> int:
        return sum(1 for compiled in self._apps.values() if compiled is not None)

    def apply_delta(
        self, policy: Policy, changed_rules: tuple[PolicyRule, ...]
    ) -> set[str] | None:
        """Incrementally re-lower after a control-plane delta.

        ``policy`` is the new snapshot (same rule list minus the delta's
        edits); only the apps a changed rule can :meth:`~PolicyRule.touches_app`
        are recompiled — everything else keeps its compiled object, which
        is what lets the enforcer keep those apps' flow-cache entries
        warm.  Returns the set of recompiled (affected) app ids, or None
        when the delta cannot be applied incrementally (the database
        generation moved underneath us) and the caller must fall back to
        a full invalidation.

        Apps that previously failed to lower (``None`` entries backed by
        a database app) are retried and always reported as affected: we
        cannot reason about which rules touch an app we never compiled.
        """
        if self._generation != self.database.generation:
            return None
        self.policy = policy
        self._rules = tuple(policy.rules)
        self._default_action = policy.default_action
        affected: set[str] = set()
        for app_id, compiled in list(self._apps.items()):
            entry = self.database.lookup_app_id(app_id)
            if entry is None:
                # Unknown app: its None entry stays None — packets from
                # it are dropped before policy evaluation either way.
                continue
            if compiled is None or any(
                rule.touches_app(entry) for rule in changed_rules
            ):
                self._apps[app_id] = self._compile_entry(entry)
                affected.add(app_id)
        return affected

    def _compile_entry(self, entry) -> CompiledAppPolicy | None:
        deny: list[CompiledRule] = []
        allow: list[CompiledRule] = []
        for rule in self._rules:
            try:
                if rule.level is PolicyLevel.HASH:
                    compiled = CompiledRule(
                        rule=rule,
                        hash_match=rule.hash_matches_entry(entry),
                        index_set=frozenset(),
                    )
                else:
                    compiled = CompiledRule(
                        rule=rule,
                        hash_match=False,
                        index_set=entry.matching_indexes(rule.signature_matches),
                    )
            except Exception:
                # Uncompilable rule: let the whole app use the string path
                # so compiled and naive evaluation can never diverge.
                return None
            (deny if rule.action is PolicyAction.DENY else allow).append(compiled)
        return CompiledAppPolicy(
            app_id=entry.app_id,
            method_count=entry.method_count,
            deny=tuple(deny),
            allow=tuple(allow),
            default_action=self._default_action,
        )


_RULE_RE = re.compile(
    r"""\{\s*\[(?P<action>allow|deny)\]\s*\[(?P<level>hash|library|class|method)\]\s*\["(?P<target>[^"]+)"\]\s*\}""",
    re.IGNORECASE,
)


def parse_policy(text: str, name: str = "policy", default_action: PolicyAction = PolicyAction.ALLOW) -> Policy:
    """Parse policy text written in the paper's Snippet 1 grammar.

    Lines starting with ``//`` are comments; blank lines are ignored;
    rules may span multiple lines (the Dropbox example in the paper wraps
    its method target).
    """
    # Strip comments line-wise, then scan the whole remaining text for rules
    # so that a rule broken across lines still parses.
    stripped_lines = []
    for line in text.splitlines():
        if line.strip().startswith("//"):
            continue
        stripped_lines.append(line)
    body = "\n".join(stripped_lines)
    policy = Policy(name=name, default_action=default_action)
    matched_spans = 0
    for match in _RULE_RE.finditer(body.replace("\n", "")):
        matched_spans += 1
        policy.add_rule(
            PolicyRule(
                action=PolicyAction(match.group("action").lower()),
                level=PolicyLevel.parse(match.group("level")),
                target=match.group("target"),
            )
        )
    leftover = _RULE_RE.sub("", body.replace("\n", "")).strip()
    if leftover and not matched_spans:
        raise PolicyParseError(f"no valid policy rules found in: {text[:80]!r}")
    if leftover and "{" in leftover:
        raise PolicyParseError(f"unparseable policy fragment: {leftover[:80]!r}")
    return policy
