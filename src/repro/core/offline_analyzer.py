"""The Offline Analyzer.

For every app the enterprise wants BorderPatrol to manage, the Offline
Analyzer parses the apk's dex files, extracts all method signatures,
orders them deterministically and assigns sequential indexes; the
result is stored in the signature database under the apk's md5 hash
(paper §IV-A1, §V-A).  The same canonical ordering function is used by
the on-device Context Manager so encoder and decoder always agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.apk.package import ApkFile
from repro.core.database import DatabaseEntry, SignatureDatabase, canonical_signature_order


@dataclass
class AnalysisReport:
    """Summary of one Offline Analyzer batch run."""

    apps_processed: int = 0
    apps_skipped: int = 0
    total_methods: int = 0
    multidex_apps: int = 0

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        return AnalysisReport(
            apps_processed=self.apps_processed + other.apps_processed,
            apps_skipped=self.apps_skipped + other.apps_skipped,
            total_methods=self.total_methods + other.total_methods,
            multidex_apps=self.multidex_apps + other.multidex_apps,
        )


class OfflineAnalyzer:
    """Builds :class:`~repro.core.database.SignatureDatabase` entries from apks."""

    def __init__(self, database: SignatureDatabase | None = None) -> None:
        self.database = SignatureDatabase() if database is None else database

    def analyze(self, apk: ApkFile) -> DatabaseEntry:
        """Process one apk and register its signature mapping.

        Re-analysing an already-known apk (same md5) is idempotent and
        returns the existing entry, so app-store updates with a new hash
        coexist with older versions still installed on some devices.
        """
        existing = self.database.lookup_md5(apk.md5)
        if existing is not None:
            return existing
        dex_files = apk.parse_dex_files()
        signatures = [str(s) for s in canonical_signature_order(dex_files)]
        entry = DatabaseEntry(
            md5=apk.md5,
            app_id=apk.app_id,
            package_name=apk.package_name,
            signatures=signatures,
        )
        self.database.add(entry)
        return entry

    def analyze_batch(self, apks: Iterable[ApkFile]) -> AnalysisReport:
        """Process a list of apks, as the prototype's Java tool does."""
        report = AnalysisReport()
        for apk in apks:
            already_known = self.database.lookup_md5(apk.md5) is not None
            entry = self.analyze(apk)
            if already_known:
                report.apps_skipped += 1
                continue
            report.apps_processed += 1
            report.total_methods += entry.method_count
            if apk.is_multidex:
                report.multidex_apps += 1
        return report
