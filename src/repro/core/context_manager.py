"""The Context Manager — BorderPatrol's on-device component.

Implemented in the paper as an Xposed module (§V-B), the Context Manager

1. parses the dex files of each managed app when the app is loaded and
   derives the same deterministic signature-to-index mapping the Offline
   Analyzer stored in the enterprise database, plus the line-number
   tables needed to disambiguate overloaded methods;
2. registers a post-hook on socket connection: once a connection is
   established it calls ``getStackTrace``, maps each stack frame back to
   a method signature (via class name, method name and source line), and
   encodes the app identifier plus the frame indexes;
3. writes the encoded tag into the socket's ``IP_OPTIONS`` through the
   JNI shared-library wrapper around ``setsockopt``, which succeeds only
   because the provisioned device runs the one-line-patched kernel.

The Figure 4 study isolates the cost of each of those steps;
:class:`ContextManagerMode` exposes the corresponding reduced variants
(static injection without stack capture, stack capture without dynamic
encoding) used by configurations (iv) and (v).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.android.callstack import CallStack, StackFrame
from repro.android.device import Device
from repro.android.hooks import SOCKET_CONNECTED, HookContext
from repro.android.runtime import AppProcess
from repro.core.database import canonical_signature_order
from repro.core.encoding import IndexWidth, StackTraceEncoder
from repro.dex.model import MethodDef
from repro.dex.signature import MethodSignature
from repro.netstack.ip import BORDERPATROL_OPTION_TYPE, IPOptions
from repro.netstack.sockets import Capability, IP_OPTIONS, IPPROTO_IP, PermissionDenied


class ContextManagerMode(enum.Enum):
    """Which subset of the Context Manager pipeline is active (Figure 4)."""

    #: Configuration (iv): hook sockets and inject a constant tag, no stack capture.
    STATIC_INJECT = "static-inject"
    #: Configuration (v): additionally call ``getStackTrace`` but still inject a constant.
    STATIC_GETSTACK = "static-getstack"
    #: Configuration (vi): the full dynamic pipeline.
    DYNAMIC = "dynamic"


@dataclass
class ContextManagerStats:
    sockets_tagged: int = 0
    sockets_failed: int = 0
    frames_seen: int = 0
    frames_mapped: int = 0
    frames_unmapped: int = 0
    stacks_truncated: int = 0


@dataclass
class _AppState:
    """Per-app state derived from the app's own dex files at load time."""

    app_id: str
    signature_index: dict[str, int]
    methods_by_class: dict[str, list[MethodDef]]

    def resolve_frame(self, frame: StackFrame) -> MethodSignature | None:
        """Map one stack frame back to a method signature.

        Java stack frames lack parameter types, so overloads are
        disambiguated through the debug line number; when debug info is
        stripped, all overloads collapse onto the lexicographically first
        one (the over-approximation described in §VII).
        """
        methods = self.methods_by_class.get(frame.class_name)
        if not methods:
            return None
        candidates = [m for m in methods if m.signature.method_name == frame.method_name]
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0].signature
        if frame.has_line_number:
            for method in candidates:
                if method.debug.covers(frame.line_number):
                    return method.signature
        return min(candidates, key=lambda m: m.signature.sort_key()).signature


class ContextManager:
    """The Xposed module that tags every managed socket with its call stack."""

    HOOK_NAME = "borderpatrol-context-manager"

    def __init__(
        self,
        device: Device,
        mode: ContextManagerMode = ContextManagerMode.DYNAMIC,
        index_width: IndexWidth = IndexWidth.FIXED_2,
        capabilities: Capability = Capability.NONE,
        static_payload: bytes = b"\x00" * 16,
    ) -> None:
        self.device = device
        self.mode = mode
        self.encoder = StackTraceEncoder(index_width=index_width)
        self.capabilities = capabilities
        self.static_payload = static_payload
        self.stats = ContextManagerStats()
        self._app_states: dict[str, _AppState] = {}
        self._installed = False

    # -- installation -----------------------------------------------------------------

    def install(self) -> None:
        """Register the socket post-hook on the device's hooking framework."""
        if self._installed:
            return
        self.device.hook_manager.register_post_hook(
            SOCKET_CONNECTED, self._on_socket_connected, name=self.HOOK_NAME
        )
        self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            self.device.hook_manager.unregister(SOCKET_CONNECTED, self.HOOK_NAME)
            self._installed = False

    @property
    def is_installed(self) -> bool:
        return self._installed

    # -- per-app state -------------------------------------------------------------------

    def _state_for(self, process: AppProcess) -> _AppState:
        package = process.package_name
        state = self._app_states.get(package)
        if state is not None:
            return state
        apk = process.apk
        dex_files = apk.parse_dex_files()
        ordered = canonical_signature_order(dex_files)
        signature_index = {str(s): i for i, s in enumerate(ordered)}
        methods_by_class: dict[str, list[MethodDef]] = {}
        for dex in dex_files:
            for method in dex.iter_methods():
                methods_by_class.setdefault(method.signature.class_name, []).append(method)
        state = _AppState(
            app_id=apk.app_id,
            signature_index=signature_index,
            methods_by_class=methods_by_class,
        )
        self._app_states[package] = state
        return state

    # -- stack resolution ------------------------------------------------------------------

    def resolve_stack(self, process: AppProcess, stack: CallStack) -> list[int]:
        """Map a call stack to signature indexes, innermost frame first."""
        state = self._state_for(process)
        indexes: list[int] = []
        for frame in stack:
            self.stats.frames_seen += 1
            signature = state.resolve_frame(frame)
            if signature is None:
                self.stats.frames_unmapped += 1
                continue
            index = state.signature_index.get(str(signature))
            if index is None:
                self.stats.frames_unmapped += 1
                continue
            self.stats.frames_mapped += 1
            indexes.append(index)
        return indexes

    # -- the hook itself ------------------------------------------------------------------------

    def _on_socket_connected(self, context: HookContext) -> None:
        process = context.process
        try:
            options = self._build_options(process)
        except Exception:
            self.stats.sockets_failed += 1
            raise
        try:
            if context.java_socket is not None:
                context.java_socket.set_ip_options_via_jni(options, capabilities=self.capabilities)
            else:
                # Native-hook dispatch (Frida-style extension, §VII): there is
                # no managed socket object, so write the option straight
                # through the kernel interface on the raw descriptor.
                self.device.clock.advance(self.device.cost_model.setsockopt_ms)
                self.device.kernel.setsockopt(
                    context.fd, IPPROTO_IP, IP_OPTIONS, options, capabilities=self.capabilities
                )
        except PermissionDenied:
            self.stats.sockets_failed += 1
            raise
        self.stats.sockets_tagged += 1

    def _build_options(self, process: AppProcess) -> IPOptions:
        if self.mode is ContextManagerMode.STATIC_INJECT:
            return IPOptions.single(BORDERPATROL_OPTION_TYPE, self.static_payload)
        stack = process.get_stack_trace(charge_cost=True)
        if self.mode is ContextManagerMode.STATIC_GETSTACK:
            return IPOptions.single(BORDERPATROL_OPTION_TYPE, self.static_payload)
        # Full dynamic pipeline: resolve, encode and charge the encoding cost.
        state = self._state_for(process)
        indexes = self.resolve_stack(process, stack)
        if len(self.encoder.fit_indexes(indexes)) < len(indexes):
            self.stats.stacks_truncated += 1
        self.device.clock.advance(self.device.cost_model.encode_ms)
        return self.encoder.encode_option(state.app_id, indexes)
