"""The versioned policy control plane.

The paper treats the company policy as a static blob an administrator
swaps wholesale; at production scale (continuous admin edits over a
gateway serving millions of flows) that model collapses the fast path
exactly when it matters, because every swap recompiles every app and
flushes every cached flow verdict.  This module is the control plane
that replaces it:

* **addressable rules** — every rule in a :class:`PolicyStore` has a
  stable id (``r1``, ``r2``, …) that survives serialization;
* **delta updates** — mutations are :class:`PolicyUpdate` transactions
  built from :class:`AddRule` / :class:`RemoveRule` / :class:`ReplaceRule` /
  :class:`SetDefault` operations, applied atomically; every committed
  transaction bumps a monotonic :attr:`PolicyStore.version`;
* **immutable snapshots** — the store derives frozen
  :class:`~repro.core.policy.Policy` snapshots; data-plane components
  never see a half-applied transaction;
* **surgical propagation** — subscribed enforcers receive a
  :class:`PolicyDelta` naming exactly the rules whose membership
  changed, so they can recompile only the apps those rules can touch
  and invalidate only those apps' flow-cache entries
  (:meth:`repro.core.policy_enforcer.PolicyEnforcer.apply_policy_delta`);
* **first-class serialization** — :meth:`PolicyStore.to_json` /
  :meth:`PolicyStore.from_json` persist rules in the paper's Snippet 1
  grammar (each serialized rule is the grammar rendering, re-parsed on
  load), so the on-disk format round-trips through the same parser the
  text format uses.

``Policy``-level full replacement remains available —
:meth:`PolicyStore.set_policy` records it as one replace-all
transaction — which is what keeps the legacy ``set_policy(policy)``
entry points working as thin compatibility shims.

Replication
-----------
Every committed transaction is also appended — ids resolved, rules
rendered in the Snippet 1 grammar — to the store's :class:`DeltaLog`, an
append-only, JSON-serializable record of the store's whole history.
A :class:`GatewayReplica` is one remote gateway's mirror of the store:
it attaches at some version, consumes :class:`DeltaLogRecord` entries
(pushed live through :meth:`PolicyStore.subscribe_replica`, or replayed
in bulk via :meth:`GatewayReplica.catch_up`), and re-applies each
transaction to its own shadow rule table, fanning the same surgical
:class:`PolicyDelta` out to its local enforcer.  Chained fingerprints
over the rule table make divergence detectable at apply time: a replica
whose state does not hash to a record's parent fingerprint refuses the
record instead of silently forking the fleet's policy.

Compaction
----------
The log is not append-only forever: :meth:`DeltaLog.compact` folds the
record prefix into a :class:`SnapshotRecord` (the full rule table at
that version, carrying the same chained fingerprint the folded prefix
ended on) followed by the surviving delta suffix.  A late-joining
replica bootstraps from the snapshot — one fingerprint-verified full
sync through its shadow store — and replays only the suffix, converging
in O(suffix) instead of O(history); ``PolicyStore(compact_every=N)``
folds automatically every N committed versions so long-lived stores
stay bounded.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Iterator

from repro.core.policy import (
    Policy,
    PolicyAction,
    PolicyParseError,
    PolicyRule,
    parse_policy,
)


class PolicyUpdateError(ValueError):
    """Raised when a transaction cannot be applied; the store is unchanged."""


class ReplicationError(RuntimeError):
    """Raised when a replica cannot consume a delta-log record.

    Either the log cannot serve the replica's version (truncated /
    non-contiguous), the replica's rule table no longer hashes to the
    record's parent fingerprint (it was mutated out of band and has
    diverged), or the record is opaque (an out-of-band full sync whose
    rules could not be serialized).  In every case the safe recovery is
    to re-attach the replica from the store's current state.
    """


def _fingerprint_state(items, default_action: PolicyAction) -> str:
    """Stable hash of an id-addressed rule table plus its default action.

    Covers exactly the enforcement-relevant state (ids, order, action/
    level/target, default) so two gateways with equal fingerprints are
    guaranteed verdict-identical.
    """
    hasher = hashlib.sha256()
    hasher.update(default_action.value.encode("utf-8"))
    for rule_id, rule in items:
        hasher.update(b"\x00")
        hasher.update(rule_id.encode("utf-8"))
        hasher.update(
            f"|{rule.action.value}|{rule.level.name}|{rule.target}".encode("utf-8")
        )
    return hasher.hexdigest()


def _next_free_id(taken, next_id: int) -> tuple[str, int]:
    """The next unused ``rN`` id given already-taken ids and a counter."""
    while f"r{next_id}" in taken:
        next_id += 1
    return f"r{next_id}", next_id + 1


def _validate_rule(rule: PolicyRule, rule_id) -> None:
    """Reject rules/ids that :meth:`PolicyStore.from_json` could not re-read.

    Commit-time validation keeps the serialization round-trip total: any
    state :meth:`PolicyStore.apply` accepts, ``from_json(to_json(...))``
    can restore.
    """
    if rule_id is not None and not isinstance(rule_id, str):
        raise PolicyUpdateError(f"rule id must be a string, got: {rule_id!r}")
    if '"' in rule.target:
        raise PolicyUpdateError(
            f"rule target {rule.target!r} cannot be rendered in the Snippet 1 "
            "grammar (double quotes are the target delimiter)"
        )


# -- update operations ----------------------------------------------------------------


@dataclass(frozen=True)
class AddRule:
    """Append ``rule``; ``rule_id`` is allocated at commit time if None."""

    rule: PolicyRule
    rule_id: str | None = None

    def describe(self) -> str:
        rid = self.rule_id or "r?"
        return f"+ {rid} {self.rule.render()}"


@dataclass(frozen=True)
class RemoveRule:
    rule_id: str

    def describe(self) -> str:
        return f"- {self.rule_id}"


@dataclass(frozen=True)
class ReplaceRule:
    """Swap the rule behind ``rule_id`` in place (position preserved)."""

    rule_id: str
    rule: PolicyRule

    def describe(self) -> str:
        return f"~ {self.rule_id} {self.rule.render()}"


@dataclass(frozen=True)
class SetDefault:
    action: PolicyAction

    def describe(self) -> str:
        return f"! default {self.action.value}"


@dataclass
class PolicyUpdate:
    """A batch of operations applied as one atomic transaction.

    The builder methods return ``self`` so updates chain fluently::

        store.apply(
            PolicyUpdate(reason="block flurry")
            .add_rule(PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/flurry"))
            .remove_rule("r3")
        )
    """

    ops: list = field(default_factory=list)
    reason: str = ""

    def add_rule(self, rule: PolicyRule, rule_id: str | None = None) -> "PolicyUpdate":
        self.ops.append(AddRule(rule=rule, rule_id=rule_id))
        return self

    def remove_rule(self, rule_id: str) -> "PolicyUpdate":
        self.ops.append(RemoveRule(rule_id=rule_id))
        return self

    def replace_rule(self, rule_id: str, rule: PolicyRule) -> "PolicyUpdate":
        self.ops.append(ReplaceRule(rule_id=rule_id, rule=rule))
        return self

    def set_default(self, action: PolicyAction) -> "PolicyUpdate":
        self.ops.append(SetDefault(action=action))
        return self

    def describe(self) -> str:
        return "\n".join(op.describe() for op in self.ops) or "(no-op)"

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class PolicyDelta:
    """What subscribers receive after a transaction commits.

    ``changed_rules`` lists every rule whose membership changed (added,
    removed, and both sides of a replace) — the reachability inputs for
    surgical invalidation.  ``full`` is True when the delta's effect
    cannot be localised to the apps those rules touch: the default
    action changed, or the policy transitioned into/out of whitelist
    mode (the presence of *any* allow rule changes the evaluation of
    packets no individual rule matches).

    ``base_rules``/``base_default`` record the store state the delta was
    computed *from*; a subscriber whose active policy does not match the
    base (it was mutated out of band, or synced from elsewhere) must not
    patch incrementally — applying this delta there falls back to a full
    resync to ``policy``, keeping enforcement consistent with the store.
    """

    version: int
    policy: Policy
    changed_rules: tuple[PolicyRule, ...]
    full: bool
    base_rules: tuple[PolicyRule, ...] = ()
    base_default: PolicyAction = PolicyAction.ALLOW
    reason: str = ""


# -- the replicated delta log ----------------------------------------------------------


def _rule_payload(rule_id: str, rule: PolicyRule) -> dict:
    """One rule as a log/store payload: grammar rendering plus id."""
    payload = {"id": rule_id, "rule": rule.render()}
    if rule.comment:
        payload["comment"] = rule.comment
    return payload


class RuleInternCache:
    """Process-wide intern table for parsed Snippet 1 rule strings.

    Catch-up replay re-parses every logged rule rendering on every
    replica: N gateways replaying the same :class:`DeltaLogRecord`
    stream perform N identical ``parse_policy`` calls per rule, and churn
    schedules that toggle the same rule repeatedly re-parse the same
    string on every toggle.  :class:`~repro.core.policy.PolicyRule` is a
    frozen dataclass, so the parse result can be shared safely; this
    cache interns rules by their exact ``(rendering, comment)`` payload
    and hands every later consumer the already-parsed object.

    ``hits``/``misses`` are observability counters — the fleet bench
    asserts catch-up convergence reuses parses instead of re-doing them.
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("the rule intern cache needs capacity for at least one rule")
        self.capacity = capacity
        self._rules: dict[tuple[str, str], PolicyRule] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, text: str, comment: str = "") -> PolicyRule:
        """The parsed rule behind ``text`` (one rule in the Snippet 1
        grammar), parsing only on first sight of the payload."""
        key = (text, comment)
        cached = self._rules.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        parsed = parse_policy(text)
        if len(parsed.rules) != 1:
            raise PolicyParseError(f"expected exactly one rule, got: {text!r}")
        rule = parsed.rules[0]
        if comment:
            rule = dataclass_replace(rule, comment=comment)
        if len(self._rules) >= self.capacity:
            # FIFO eviction: policy vocabularies are tiny next to the
            # capacity, so anything evicted here is long-stale churn.
            self._rules.pop(next(iter(self._rules)))
        self._rules[key] = rule
        return rule

    def clear(self) -> None:
        self._rules.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._rules)


#: The shared intern table every replication consumer parses through.
RULE_INTERN_CACHE = RuleInternCache()


def _rule_from_payload(payload: dict) -> tuple[str, PolicyRule]:
    if not isinstance(payload, dict) or "rule" not in payload or "id" not in payload:
        raise PolicyParseError(f"malformed rule payload: {payload!r}")
    rule = RULE_INTERN_CACHE.intern(payload["rule"], payload.get("comment") or "")
    return payload["id"], rule


@dataclass(frozen=True)
class SnapshotRecord:
    """A full store state the delta-log prefix before it folded into.

    Compaction (:meth:`DeltaLog.compact`) replaces the log's record
    prefix with one of these: the complete id-addressed rule table
    (every rule rendered in the Snippet 1 grammar), the default action,
    the version the snapshot represents, and the chained SHA-256
    fingerprint of that state — the same hash the folded prefix's last
    record carried, so the surviving suffix keeps chaining off it
    unbroken.  A replica bootstrapping from the snapshot re-hashes the
    parsed table and refuses a snapshot whose rules do not hash to
    ``fingerprint`` (a tampered or corrupted snapshot raises
    :class:`ReplicationError` instead of silently seeding a fork).

    ``compacted_records`` counts every record ever folded into this
    snapshot (cumulative across repeated compactions) — the history a
    late joiner no longer replays.
    """

    version: int
    rules: tuple[dict, ...]
    default_action: str
    fingerprint: str
    compacted_records: int = 0
    reason: str = ""

    def to_payload(self) -> dict:
        return {
            "kind": "snapshot",
            "version": self.version,
            "rules": list(self.rules),
            "default_action": self.default_action,
            "fingerprint": self.fingerprint,
            "compacted_records": self.compacted_records,
            "reason": self.reason,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SnapshotRecord":
        try:
            return cls(
                version=payload["version"],
                rules=tuple(payload["rules"]),
                default_action=payload["default_action"],
                fingerprint=payload["fingerprint"],
                compacted_records=payload.get("compacted_records", 0),
                reason=payload.get("reason", ""),
            )
        except (KeyError, TypeError) as exc:
            raise PolicyParseError(f"malformed snapshot record: {payload!r}") from exc

    def state(self) -> tuple[dict, PolicyAction]:
        """The parsed, fingerprint-verified rule table behind this snapshot."""
        rules = dict(_rule_from_payload(body) for body in self.rules)
        default = PolicyAction(self.default_action)
        if _fingerprint_state(rules.items(), default) != self.fingerprint:
            raise ReplicationError(
                f"snapshot @v{self.version} is tampered or corrupted: its rule "
                "table does not hash to its fingerprint"
            )
        return rules, default


def _state_snapshot(
    rules: dict, default: PolicyAction, version: int,
    compacted_records: int = 0, reason: str = "",
) -> SnapshotRecord | None:
    """Render a store state as a :class:`SnapshotRecord`.

    Returns None when the state cannot be rendered in the Snippet 1
    grammar (legacy seeded targets containing double quotes) — such a
    log stays replayable but cannot serve snapshot bootstraps.
    """
    if any('"' in rule.target for rule in rules.values()):
        return None
    return SnapshotRecord(
        version=version,
        rules=tuple(_rule_payload(rule_id, rule) for rule_id, rule in rules.items()),
        default_action=default.value,
        fingerprint=_fingerprint_state(rules.items(), default),
        compacted_records=compacted_records,
        reason=reason,
    )


@dataclass(frozen=True)
class DeltaLogRecord:
    """One committed transaction, serialized for replication.

    ``kind`` is ``"update"`` for ordinary :class:`PolicyUpdate`
    transactions (``ops`` holds the normalized operations, every id
    resolved and every rule rendered in the Snippet 1 grammar) and
    ``"sync"`` for full replacements recorded by :meth:`PolicyStore.reset_to`
    (``rules`` holds the complete resulting table).  A sync whose rules
    cannot be rendered in the grammar is *opaque* (``rules is None``):
    the version bump is logged so contiguity holds, but replicas cannot
    replay it and must re-attach.

    ``parent_fingerprint``/``fingerprint`` chain the store states before
    and after the transaction, which is what lets a replica prove it is
    applying the record onto exactly the base the head committed on.
    """

    version: int
    kind: str
    reason: str
    full: bool
    parent_fingerprint: str
    fingerprint: str
    ops: tuple[dict, ...] = ()
    rules: tuple[dict, ...] | None = None
    default_action: str = PolicyAction.ALLOW.value

    def to_payload(self) -> dict:
        payload = {
            "version": self.version,
            "kind": self.kind,
            "reason": self.reason,
            "full": self.full,
            "parent_fingerprint": self.parent_fingerprint,
            "fingerprint": self.fingerprint,
            "default_action": self.default_action,
        }
        if self.kind == "update":
            payload["ops"] = list(self.ops)
        else:
            payload["rules"] = None if self.rules is None else list(self.rules)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "DeltaLogRecord":
        try:
            rules = payload.get("rules")
            return cls(
                version=payload["version"],
                kind=payload["kind"],
                reason=payload.get("reason", ""),
                full=payload["full"],
                parent_fingerprint=payload["parent_fingerprint"],
                fingerprint=payload["fingerprint"],
                ops=tuple(payload.get("ops", ())),
                rules=None if rules is None else tuple(rules),
                default_action=payload.get("default_action", PolicyAction.ALLOW.value),
            )
        except (KeyError, TypeError) as exc:
            raise PolicyParseError(f"malformed delta log record: {payload!r}") from exc

    def as_update(self) -> PolicyUpdate:
        """Reconstruct the transaction for replay on a replica's shadow store."""
        if self.kind != "update":
            raise ReplicationError(f"record v{self.version} is a {self.kind}, not an update")
        update = PolicyUpdate(reason=self.reason)
        for op in self.ops:
            kind = op.get("op")
            if kind == "add":
                rule_id, rule = _rule_from_payload(op)
                update.add_rule(rule, rule_id=rule_id)
            elif kind == "remove":
                update.remove_rule(op["id"])
            elif kind == "replace":
                rule_id, rule = _rule_from_payload(op)
                update.replace_rule(rule_id, rule)
            elif kind == "set_default":
                update.set_default(PolicyAction(op["action"]))
            else:
                raise ReplicationError(f"unknown logged operation: {op!r}")
        return update


class DeltaLog:
    """Contiguous, serializable history of a policy store: snapshot + suffix.

    The log starts at ``base_version`` and holds exactly one record per
    subsequent version.  ``snapshot``, when present, is the full store
    state *at* ``base_version`` — initially the genesis state the log
    was created from, and after :meth:`compact` the folded prefix.  A
    replica older than ``base_version`` bootstraps from the snapshot
    (one full sync) instead of replaying history; without a snapshot it
    cannot be served and must re-attach out of band.  ``since(v)`` is
    the catch-up primitive: every record a subscriber at version ``v``
    needs to converge to the head.
    """

    def __init__(
        self,
        base_version: int = 0,
        records: list[DeltaLogRecord] | None = None,
        snapshot: SnapshotRecord | None = None,
    ) -> None:
        if snapshot is not None and snapshot.version != base_version:
            raise ValueError(
                f"log base snapshot must sit at the base version "
                f"({snapshot.version} != {base_version})"
            )
        self.base_version = base_version
        self.snapshot = snapshot
        self._records: list[DeltaLogRecord] = []
        for record in records or []:
            self.append(record)

    @property
    def head_version(self) -> int:
        return self.base_version + len(self._records)

    def append(self, record: DeltaLogRecord) -> None:
        if record.version != self.head_version + 1:
            raise ReplicationError(
                f"delta log at head v{self.head_version} cannot append "
                f"non-contiguous record v{record.version}"
            )
        self._records.append(record)

    def record(self, version: int) -> DeltaLogRecord:
        if not self.base_version < version <= self.head_version:
            raise ReplicationError(
                f"delta log holds versions {self.base_version + 1}..{self.head_version}; "
                f"no record for v{version}"
            )
        return self._records[version - self.base_version - 1]

    def since(self, version: int) -> list[DeltaLogRecord]:
        """Every record a subscriber at ``version`` is missing, in order.

        A subscriber older than ``base_version`` predates the suffix: it
        must bootstrap from :attr:`snapshot` first (what
        :meth:`GatewayReplica.catch_up` does) — asking for its records
        is a clear error, because the prefix was compacted away.
        """
        if version < self.base_version:
            raise ReplicationError(
                f"delta log starts at v{self.base_version} (history before it "
                f"{'is folded into the base snapshot' if self.snapshot is not None else 'was not serialized'}); "
                f"a replica at v{version} predates the suffix and must "
                f"{'bootstrap from the snapshot' if self.snapshot is not None else 're-attach from the store'}"
            )
        return self._records[max(0, version - self.base_version):]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DeltaLogRecord]:
        return iter(self._records)

    # -- compaction --------------------------------------------------------------------

    def _materialize(self, version: int) -> "PolicyStore":
        """Fold snapshot + records up to ``version`` into a scratch store.

        Every replayed record is fingerprint-verified, so a log whose
        chain does not hold cannot be compacted into a wrong snapshot.
        """
        if self.snapshot is None:
            raise ReplicationError(
                f"delta log at base v{self.base_version} has no base snapshot "
                "to fold records into; compact through the owning store"
            )
        rules, default = self.snapshot.state()
        scratch = PolicyStore(name="compaction")
        scratch._rules = rules
        scratch._default_action = default
        scratch.version = self.snapshot.version
        scratch.delta_log = DeltaLog(base_version=self.snapshot.version)
        # An opaque sync makes the state unknowable until a later clean
        # sync re-establishes it in full.  Records inside the unknown
        # region are skipped — they can neither be applied nor verified,
        # and the next clean sync supersedes whatever they did — so only
        # a fold *ending* inside the region is unfoldable.
        state_known = True
        for record in self._records[: version - self.base_version]:
            if record.kind == "sync":
                if record.rules is None:
                    state_known = False
                    continue
                scratch._adopt_state(
                    dict(_rule_from_payload(body) for body in record.rules),
                    PolicyAction(record.default_action),
                    record.version,
                )
                state_known = True
            elif state_known:
                scratch.apply(record.as_update())
            else:
                continue
            if scratch.fingerprint() != record.fingerprint:
                raise ReplicationError(
                    f"compaction replay diverged from the fingerprint chain "
                    f"at v{record.version}; refusing to fold a wrong snapshot"
                )
        if not state_known:
            raise ReplicationError(
                f"cannot compact through v{version}: it sits inside an opaque "
                "sync's unknown-state region"
            )
        return scratch

    def compact(self, up_to_version: int | None = None, reason: str = "") -> SnapshotRecord | None:
        """Fold every record up to ``up_to_version`` (default: the head)
        into a new base :class:`SnapshotRecord`; the suffix survives.

        The new snapshot's fingerprint equals the last folded record's,
        so the suffix keeps chaining off it: a record appended after
        compaction carries the snapshot's fingerprint as its parent.
        Compacting to the current base is a no-op.
        """
        up_to = self.head_version if up_to_version is None else up_to_version
        if up_to == self.base_version:
            return self.snapshot
        if not self.base_version < up_to <= self.head_version:
            raise ReplicationError(
                f"delta log holds versions {self.base_version + 1}..{self.head_version}; "
                f"cannot compact up to v{up_to}"
            )
        scratch = self._materialize(up_to)
        snapshot = _state_snapshot(
            scratch._rules,
            scratch._default_action,
            up_to,
            compacted_records=self.snapshot.compacted_records + (up_to - self.base_version),
            reason=reason or f"compacted through v{up_to}",
        )
        if snapshot is None:
            raise ReplicationError(
                f"state at v{up_to} cannot be rendered in the Snippet 1 "
                "grammar; compaction would strand replicas"
            )
        self._records = self._records[up_to - self.base_version:]
        self.base_version = up_to
        self.snapshot = snapshot
        return snapshot

    # -- persistence -------------------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "base_version": self.base_version,
            "snapshot": None if self.snapshot is None else self.snapshot.to_payload(),
            "records": [record.to_payload() for record in self._records],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DeltaLog":
        if not isinstance(payload, dict) or "records" not in payload:
            raise PolicyParseError("delta log payload needs a 'records' list")
        snapshot = payload.get("snapshot")
        try:
            return cls(
                base_version=payload.get("base_version", 0),
                records=[DeltaLogRecord.from_payload(body) for body in payload["records"]],
                snapshot=None if snapshot is None else SnapshotRecord.from_payload(snapshot),
            )
        except ValueError as exc:  # snapshot/base mismatch: a corrupt file, not a bug
            raise PolicyParseError(f"malformed delta log payload: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "DeltaLog":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PolicyParseError(f"delta log json is unreadable: {exc}") from exc
        return cls.from_payload(payload)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "DeltaLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# -- the store -------------------------------------------------------------------------


class PolicyStore:
    """Addressable, versioned rule storage plus subscriber fan-out.

    The store is the single writer: the data plane only ever sees the
    frozen snapshots and deltas it derives.  ``version`` starts at 0 and
    increases by exactly 1 per committed transaction (including
    :meth:`reset_to` full syncs), so two replicas holding the same
    version hold the same rules.
    """

    def __init__(
        self,
        name: str = "policy",
        default_action: PolicyAction = PolicyAction.ALLOW,
        compact_every: int | None = None,
    ) -> None:
        self.name = name
        self._rules: dict[str, PolicyRule] = {}
        self._default_action = default_action
        self.version = 0
        self._next_id = 1
        self._snapshot: Policy | None = None
        self._subscribers: list = []
        #: Retention policy: once the delta log holds this many records,
        #: a commit folds them into the base snapshot (None = keep all).
        self.compact_every = compact_every
        #: Serialized history of every committed transaction; replicas
        #: converge from any starting version by replaying it (or, once
        #: the log is compacted, by bootstrapping from its snapshot).
        self.delta_log = self._fresh_log()
        self._replicas: list = []

    @classmethod
    def from_policy(cls, policy: Policy, name: str | None = None) -> "PolicyStore":
        """Seed a store (version 0) from an existing policy's rules."""
        store = cls(name=name or policy.name, default_action=policy.default_action)
        for rule in policy.rules:
            store._rules[store._allocate_id(store._rules)] = rule
        # The seeded rules are this log's genesis state; re-base the log
        # so its snapshot lets late joiners bootstrap without the store.
        store.delta_log = store._fresh_log()
        return store

    def _fresh_log(self) -> DeltaLog:
        """A new delta log based at the store's current state.

        The genesis snapshot (None when the state cannot be rendered in
        the grammar) is what makes a log self-contained: a replica can
        attach from the serialized log alone, with no access to the
        head store's memory.
        """
        return DeltaLog(
            base_version=self.version,
            snapshot=_state_snapshot(self._rules, self._default_action, self.version),
        )

    @property
    def compact_every(self) -> int | None:
        return self._compact_every

    @compact_every.setter
    def compact_every(self, value: int | None) -> None:
        # Validated on every assignment path (constructor, fleet /
        # deployment threading, CLI, from_json): 0 would otherwise read
        # as "never compact" while looking like "compact constantly".
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool) or value < 1
        ):
            raise ValueError(
                f"compact_every must be a positive integer or None, got: {value!r}"
            )
        self._compact_every = value

    # -- read side ---------------------------------------------------------------------

    @property
    def default_action(self) -> PolicyAction:
        return self._default_action

    def rule_ids(self) -> list[str]:
        return list(self._rules)

    def items(self) -> list[tuple[str, PolicyRule]]:
        return list(self._rules.items())

    def get(self, rule_id: str) -> PolicyRule | None:
        return self._rules.get(rule_id)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[PolicyRule]:
        return iter(self._rules.values())

    def snapshot(self) -> Policy:
        """The current rules as an immutable Policy (cached per version)."""
        if self._snapshot is None:
            self._snapshot = Policy(
                rules=list(self._rules.values()),
                default_action=self._default_action,
                name=f"{self.name}@v{self.version}",
                frozen=True,
            )
        return self._snapshot

    def fingerprint(self) -> str:
        """Stable hash of the current rule table (ids, order, default).

        Two stores — or a store and a :class:`GatewayReplica` — with
        equal fingerprints enforce identically; the delta log chains
        these hashes so replicas can verify every step of a replay.
        """
        return _fingerprint_state(self._rules.items(), self._default_action)

    # -- write side --------------------------------------------------------------------

    def _allocate_id(self, taken: dict[str, PolicyRule]) -> str:
        rule_id, self._next_id = _next_free_id(taken, self._next_id)
        return rule_id

    def apply(self, update: PolicyUpdate) -> PolicyDelta:
        """Atomically commit ``update``; bump the version; notify subscribers.

        Validation runs against a working copy, so a transaction that
        fails (unknown or duplicate rule id) raises
        :class:`PolicyUpdateError` and leaves the store untouched.
        """
        base_rules = tuple(self._rules.values())
        base_default = self._default_action
        parent_fingerprint = self.fingerprint()
        working = dict(self._rules)
        default = self._default_action
        next_id = self._next_id
        changed: list[PolicyRule] = []
        #: The transaction with every id resolved and every rule rendered —
        #: what the delta log records and replicas replay.
        normalized: list[dict] = []
        for op in update.ops:
            if isinstance(op, AddRule):
                _validate_rule(op.rule, op.rule_id)
                rule_id = op.rule_id
                if rule_id is None:
                    rule_id, next_id = _next_free_id(working, next_id)
                elif rule_id in working:
                    raise PolicyUpdateError(f"rule id {rule_id!r} already exists")
                working[rule_id] = op.rule
                changed.append(op.rule)
                normalized.append({"op": "add", **_rule_payload(rule_id, op.rule)})
            elif isinstance(op, RemoveRule):
                if op.rule_id not in working:
                    raise PolicyUpdateError(f"cannot remove unknown rule id {op.rule_id!r}")
                changed.append(working.pop(op.rule_id))
                normalized.append({"op": "remove", "id": op.rule_id})
            elif isinstance(op, ReplaceRule):
                _validate_rule(op.rule, op.rule_id)
                old = working.get(op.rule_id)
                if old is None:
                    raise PolicyUpdateError(f"cannot replace unknown rule id {op.rule_id!r}")
                if old != op.rule:
                    changed.extend((old, op.rule))
                working[op.rule_id] = op.rule
                normalized.append({"op": "replace", **_rule_payload(op.rule_id, op.rule)})
            elif isinstance(op, SetDefault):
                default = op.action
                normalized.append({"op": "set_default", "action": op.action.value})
            else:
                raise PolicyUpdateError(f"unknown policy operation: {op!r}")

        def has_allow(rules: dict[str, PolicyRule]) -> bool:
            return any(rule.action is PolicyAction.ALLOW for rule in rules.values())

        full = default is not self._default_action
        if has_allow(self._rules) != has_allow(working):
            full = True

        self._rules = working
        self._default_action = default
        self._next_id = next_id
        self.version += 1
        self._snapshot = None
        delta = PolicyDelta(
            version=self.version,
            policy=self.snapshot(),
            changed_rules=tuple(dict.fromkeys(changed)),
            full=full,
            base_rules=base_rules,
            base_default=base_default,
            reason=update.reason,
        )
        record = DeltaLogRecord(
            version=self.version,
            kind="update",
            reason=update.reason,
            full=full,
            parent_fingerprint=parent_fingerprint,
            fingerprint=self.fingerprint(),
            ops=tuple(normalized),
            default_action=self._default_action.value,
        )
        self.delta_log.append(record)
        self._notify(delta)
        for replica in list(self._replicas):
            replica.apply_delta(record)
        self._maybe_autocompact()
        return delta

    def set_policy(self, policy: Policy) -> PolicyDelta:
        """Full replacement, recorded as one replace-all transaction.

        Every old rule is removed and every new rule added, so the delta
        is still surgical per app: apps no rule of either policy touches
        keep their compiled state and cached flows.
        """
        update = PolicyUpdate(reason=f"replace all from {policy.name!r}")
        for rule_id in self._rules:
            update.remove_rule(rule_id)
        for rule in policy.rules:
            update.add_rule(rule)
        if policy.default_action is not self._default_action:
            update.set_default(policy.default_action)
        return self.apply(update)

    def reset_to(self, policy: Policy) -> int:
        """Legacy full sync: adopt ``policy``'s rules and push the caller's
        *object* (not a snapshot) to every subscriber by reference.

        This is the compatibility path behind
        :meth:`repro.core.deployment.BorderPatrolDeployment.set_policy`:
        existing callers rely on the enforcer holding their Policy
        instance so later in-place ``add_rule`` edits keep taking effect.
        Mixing such in-place edits with subsequent :meth:`apply` calls is
        unsupported — the next transaction rebuilds from the store's own
        rule table.
        """
        parent_fingerprint = self.fingerprint()
        self._rules = {}
        self._next_id = 1
        for rule in policy.rules:
            self._rules[self._allocate_id(self._rules)] = rule
        self._default_action = policy.default_action
        self.version += 1
        self._snapshot = None
        if any('"' in rule.target for rule in self._rules.values()):
            # Legacy policies may hold targets the Snippet 1 grammar cannot
            # render; log the version bump as an opaque sync so contiguity
            # holds (replicas consuming it must re-attach).
            rules: tuple[dict, ...] | None = None
        else:
            rules = tuple(
                _rule_payload(rule_id, rule) for rule_id, rule in self._rules.items()
            )
        self.delta_log.append(
            DeltaLogRecord(
                version=self.version,
                kind="sync",
                reason=f"full sync from {policy.name!r}",
                full=True,
                parent_fingerprint=parent_fingerprint,
                fingerprint=self.fingerprint(),
                rules=rules,
                default_action=self._default_action.value,
            )
        )
        for subscriber in self._subscribers:
            subscriber.sync_policy(policy, self.version)
        for replica in list(self._replicas):
            replica.apply_delta(self.delta_log.record(self.version))
        self._maybe_autocompact()
        return self.version

    def _maybe_autocompact(self) -> None:
        """Fold the log when the retention budget is reached.

        Legacy state the grammar cannot render (opaque syncs with no
        later clean sync, quoted targets) is not compactable; such a log
        silently keeps growing rather than failing the commit that
        tripped the budget.  Foldability is pre-checked with an O(suffix)
        scan so an uncompactable log does not pay a doomed full-prefix
        replay on every commit.
        """
        if not self.compact_every or len(self.delta_log) < self.compact_every:
            return
        if self.delta_log.snapshot is None:
            return
        state_known = True
        for record in self.delta_log:
            if record.kind == "sync":
                state_known = record.rules is not None
        if not state_known:
            return
        if any('"' in rule.target for rule in self._rules.values()):
            return  # the head state itself cannot be rendered
        try:
            self.delta_log.compact(self.version)
        except (ReplicationError, PolicyParseError):
            pass

    def compact(self, up_to_version: int | None = None) -> SnapshotRecord | None:
        """Fold the delta log's prefix into a snapshot + surviving suffix.

        Late-joining replicas then converge in O(suffix) records — one
        snapshot bootstrap plus the suffix replay — instead of O(history).
        """
        return self.delta_log.compact(up_to_version)

    def _adopt_state(
        self, rules: dict[str, PolicyRule], default: PolicyAction, version: int
    ) -> None:
        """Install a complete replicated state (sync-record replay path).

        Unlike :meth:`reset_to` this preserves the replicated rule ids
        verbatim — replicas must keep the head's addressing so later
        ``remove r6``-style records resolve — and adopts the head's
        version instead of bumping its own.
        """
        self._rules = dict(rules)
        self._default_action = default
        self.version = version
        self._snapshot = None
        # Re-base this store's own log at the adopted state: the local
        # history did not produce it, so appending the *next* replayed
        # update must chain from here, not from the stale head.  (A
        # replica replaying an update record after a sync record used to
        # trip the log's contiguity check exactly because of this.)
        self.delta_log = self._fresh_log()
        for rule_id in self._rules:
            if rule_id.startswith("r") and rule_id[1:].isdigit():
                self._next_id = max(self._next_id, int(rule_id[1:]) + 1)
        for subscriber in self._subscribers:
            subscriber.sync_policy(self.snapshot(), self.version)

    # -- diffing ---------------------------------------------------------------------

    def diff_update(self, target: Policy) -> PolicyUpdate:
        """The smallest transaction turning this store's rules into ``target``'s.

        Rules are matched by value; surviving rules keep their ids.  If
        the edit cannot be expressed as removals plus appended additions
        without reordering the surviving rules (rule order is
        significant: the first matching rule wins ties), the update falls
        back to a full replace-all so snapshot evaluation order is
        preserved exactly.
        """
        update = PolicyUpdate(reason=f"diff to {target.name!r}")
        target_rules = list(target.rules)

        # Multiset of rules present on both sides.
        kept: dict[PolicyRule, int] = {}
        remaining = list(target_rules)
        for rule in self._rules.values():
            if rule in remaining:
                remaining.remove(rule)
                kept[rule] = kept.get(rule, 0) + 1

        def kept_sequence(rules) -> list[PolicyRule]:
            budget = dict(kept)
            sequence = []
            for rule in rules:
                if budget.get(rule, 0) > 0:
                    budget[rule] -= 1
                    sequence.append(rule)
            return sequence

        kept_in_current = kept_sequence(self._rules.values())
        added = remaining  # target rules with no current counterpart, in order
        # After removals the store keeps kept_in_current's order; adds append.
        if kept_in_current + added != target_rules:
            update.reason = f"replace all (reordered) from {target.name!r}"
            for rule_id in self._rules:
                update.remove_rule(rule_id)
            for rule in target_rules:
                update.add_rule(rule)
        else:
            budget = dict(kept)
            for rule_id, rule in self._rules.items():
                if budget.get(rule, 0) > 0:
                    budget[rule] -= 1
                else:
                    update.remove_rule(rule_id)
            for rule in added:
                update.add_rule(rule)
        if target.default_action is not self._default_action:
            update.set_default(target.default_action)
        return update

    def unified_diff(
        self,
        target: Policy,
        update: PolicyUpdate | None = None,
        from_label: str | None = None,
        to_label: str | None = None,
    ) -> str:
        """Rule-id-aware unified-diff rendering of ``diff_update(target)``.

        Surviving rules print as context lines under their stable ids;
        removals/additions as ``-rN:``/``+rN:`` hunk lines (a replace is
        a paired ``-``/``+`` on the same id).  Ids for additions are the
        ones :meth:`apply` would allocate, so the diff an administrator
        reviews names exactly the rules a later ``policy push`` commits.
        """
        if update is None:
            update = self.diff_update(target)
        # Dry-run the id allocation the transaction would perform.
        working = dict(self._rules)
        next_id = self._next_id
        removed: set[str] = set()
        replaced: dict[str, PolicyRule] = {}
        added: list[tuple[str, PolicyRule]] = []
        new_default: PolicyAction | None = None
        for op in update.ops:
            if isinstance(op, AddRule):
                rule_id = op.rule_id
                if rule_id is None:
                    rule_id, next_id = _next_free_id(working, next_id)
                working[rule_id] = op.rule
                added.append((rule_id, op.rule))
            elif isinstance(op, RemoveRule):
                working.pop(op.rule_id, None)
                removed.add(op.rule_id)
            elif isinstance(op, ReplaceRule):
                working[op.rule_id] = op.rule
                replaced[op.rule_id] = op.rule
            elif isinstance(op, SetDefault):
                new_default = op.action
        lines = [
            f"--- {from_label or f'{self.name}@v{self.version}'}",
            f"+++ {to_label or target.name}",
        ]
        for rule_id, rule in self._rules.items():
            if rule_id in removed:
                lines.append(f"-{rule_id}: {rule.render()}")
            elif rule_id in replaced:
                lines.append(f"-{rule_id}: {rule.render()}")
                lines.append(f"+{rule_id}: {replaced[rule_id].render()}")
            else:
                lines.append(f" {rule_id}: {rule.render()}")
        for rule_id, rule in added:
            lines.append(f"+{rule_id}: {rule.render()}")
        if new_default is not None and new_default is not self._default_action:
            lines.append(f"-default: {self._default_action.value}")
            lines.append(f"+default: {new_default.value}")
        return "\n".join(lines)

    # -- subscribers -------------------------------------------------------------------

    def subscribe(self, enforcer, push: bool = True) -> None:
        """Register a data-plane consumer of this store's deltas.

        ``enforcer`` must expose ``apply_policy_delta(delta)`` and
        ``sync_policy(policy, version)`` — both
        :class:`~repro.core.policy_enforcer.PolicyEnforcer` and
        :class:`~repro.netstack.sharding.ShardedEnforcer` do.  With
        ``push`` (the default) the subscriber is immediately fully
        synced to the current snapshot and version; pass ``push=False``
        when the subscriber was constructed from this store's state
        already.
        """
        self._subscribers.append(enforcer)
        if push:
            enforcer.sync_policy(self.snapshot(), self.version)

    def unsubscribe(self, enforcer) -> None:
        if enforcer in self._subscribers:
            self._subscribers.remove(enforcer)

    def _notify(self, delta: PolicyDelta) -> None:
        for subscriber in self._subscribers:
            subscriber.apply_policy_delta(delta)

    def subscribe_replica(self, replica: "GatewayReplica", catch_up: bool = True) -> None:
        """Push every future :class:`DeltaLogRecord` to ``replica`` live.

        With ``catch_up`` (the default) the replica first replays any
        records it is missing, so subscription leaves it converged.  A
        replica left unsubscribed lags instead and converges on demand
        via :meth:`GatewayReplica.catch_up` — that is how staged
        rollouts hold back part of the fleet.
        """
        if catch_up:
            replica.catch_up(self.delta_log)
        self._replicas.append(replica)

    def unsubscribe_replica(self, replica: "GatewayReplica") -> None:
        if replica in self._replicas:
            self._replicas.remove(replica)

    # -- persistence -------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize: rules are stored as their Snippet 1 grammar rendering.

        Rules that entered through :meth:`apply` are round-trip-safe by
        construction; seeding paths (:meth:`from_policy`, :meth:`reset_to`)
        stay permissive for legacy enforcement, so unserializable targets
        are rejected here rather than written as unreadable grammar.
        """
        for rule_id, rule in self._rules.items():
            if '"' in rule.target:
                raise PolicyParseError(
                    f"rule {rule_id!r} target {rule.target!r} cannot be rendered "
                    "in the Snippet 1 grammar"
                )
        payload = {
            "name": self.name,
            "version": self.version,
            "default_action": self._default_action.value,
            "rules": [
                {
                    "id": rule_id,
                    "rule": rule.render(),
                    **({"comment": rule.comment} if rule.comment else {}),
                }
                for rule_id, rule in self._rules.items()
            ],
            # The replication history rides along (snapshot + suffix, so
            # retention bounds it): replicas can bootstrap from a saved
            # store file, and `policy push`/`policy compact` round-trip
            # the log instead of discarding it on every load.
            "delta_log": self.delta_log.to_payload(),
        }
        if self.compact_every is not None:
            payload["compact_every"] = self.compact_every
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "PolicyStore":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PolicyParseError(f"policy store json is unreadable: {exc}") from exc
        if not isinstance(payload, dict) or "rules" not in payload:
            raise PolicyParseError("policy store json needs a top-level 'rules' list")
        try:
            default_action = PolicyAction(payload.get("default_action", "allow"))
        except ValueError as exc:
            raise PolicyParseError(f"unknown default action: {payload['default_action']!r}") from exc
        store = cls(name=payload.get("name", "policy"), default_action=default_action)
        for body in payload["rules"]:
            if not isinstance(body, dict) or "rule" not in body:
                raise PolicyParseError(f"malformed rule entry in store json: {body!r}")
            parsed = parse_policy(body["rule"])
            if len(parsed.rules) != 1:
                raise PolicyParseError(
                    f"expected exactly one rule per entry, got: {body['rule']!r}"
                )
            rule = parsed.rules[0]
            if body.get("comment"):
                rule = dataclass_replace(rule, comment=body["comment"])
            rule_id = body.get("id") or store._allocate_id(store._rules)
            if not isinstance(rule_id, str):
                raise PolicyParseError(f"rule id must be a string, got: {rule_id!r}")
            if rule_id in store._rules:
                raise PolicyParseError(f"duplicate rule id in store json: {rule_id!r}")
            store._rules[rule_id] = rule
        # Future ids must not collide with loaded numeric ids.
        for rule_id in store._rules:
            if rule_id.startswith("r") and rule_id[1:].isdigit():
                store._next_id = max(store._next_id, int(rule_id[1:]) + 1)
        version = payload.get("version", 0)
        if not isinstance(version, int) or isinstance(version, bool):
            raise PolicyParseError(f"store version must be an integer, got: {version!r}")
        store.version = version
        compact_every = payload.get("compact_every")
        if compact_every is not None:
            if not isinstance(compact_every, int) or isinstance(compact_every, bool) or compact_every < 1:
                raise PolicyParseError(
                    f"compact_every must be a positive integer, got: {compact_every!r}"
                )
            store.compact_every = compact_every
        if "delta_log" in payload:
            log = DeltaLog.from_payload(payload["delta_log"])
            if log.head_version != version:
                raise PolicyParseError(
                    f"store json is inconsistent: delta log head v{log.head_version} "
                    f"does not match store version v{version}"
                )
            # The rule table must hash to the log head's chained
            # fingerprint, or the head and a replica bootstrapping from
            # this same file would enforce different tables at the same
            # version — catch the fork at load time, not at the next
            # commit's parent-fingerprint check.
            records = list(log)
            head_fingerprint = (
                records[-1].fingerprint
                if records
                else (log.snapshot.fingerprint if log.snapshot is not None else None)
            )
            if head_fingerprint is not None and head_fingerprint != store.fingerprint():
                raise PolicyParseError(
                    "store json is inconsistent: the rule table does not hash "
                    "to the delta log head's fingerprint"
                )
            store.delta_log = log
        else:
            # Legacy store json without a serialized log: the loaded
            # state becomes the log's genesis snapshot, so replicas can
            # still bootstrap from it even though older history is gone.
            store.delta_log = store._fresh_log()
        return store

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "PolicyStore":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# -- gateway replication ---------------------------------------------------------------


class GatewayReplica:
    """One gateway's converging mirror of a :class:`PolicyStore`.

    The replica owns a *shadow* store (the head's id-addressed rule
    table at some version) plus the gateway's local enforcer, which
    subscribes to the shadow.  Consuming a :class:`DeltaLogRecord`
    re-applies the head's transaction to the shadow, so the enforcer
    receives exactly the same surgical :class:`PolicyDelta` the head's
    own data plane saw — verdict identity and warm flow caches come for
    free, no matter how late the record arrives.

    Replicas attach from a store's current state (any version) and
    converge by :meth:`catch_up` replay over the shared
    :class:`DeltaLog`, or live via
    :meth:`PolicyStore.subscribe_replica`.  Every applied record is
    fingerprint-verified against the head's chained hashes;
    :class:`ReplicationError` means the replica diverged and must
    re-attach rather than keep enforcing a forked policy.
    """

    def __init__(self, enforcer, store: PolicyStore, name: str = "gateway") -> None:
        self.name = name
        self.enforcer = enforcer
        self._shadow = PolicyStore(name=f"{name}:{store.name}")
        self._shadow._rules = dict(store._rules)
        self._shadow._default_action = store._default_action
        self._shadow._next_id = store._next_id
        self._shadow.version = store.version
        # The shadow keeps the head's retention policy: its own log is
        # never replayed by anyone, so folding it aggressively just
        # bounds replica memory over a long-lived deployment.
        self._shadow.compact_every = store.compact_every
        self._shadow.delta_log = self._shadow._fresh_log()
        self._shadow.subscribe(enforcer, push=True)
        # A sharded enforcer with a persistent worker pool needs an
        # id-addressed store to push compact delta records from; the
        # shadow mirrors the head's rule ids exactly, so it serves
        # (duck-typed — core enforcers simply lack the hook).
        attach_control = getattr(enforcer, "attach_control", None)
        if attach_control is not None:
            attach_control(self._shadow)
        #: Records applied through :meth:`apply_delta` or
        #: :meth:`bootstrap` (catch-up included) — the convergence cost.
        self.records_applied = 0

    @classmethod
    def from_log(
        cls, enforcer, log: DeltaLog, name: str = "gateway",
        compact_every: int | None = None,
    ) -> "GatewayReplica":
        """Attach a brand-new gateway from a serialized log alone.

        This is the late-joiner path: the gateway has no access to the
        head store's memory, only the replicated log.  It bootstraps
        from the log's base snapshot (one ``reset_to``-style full sync
        through the shadow store) and replays the suffix as ordinary
        surgical deltas — O(suffix) records, however long the fleet has
        been alive.
        """
        if log.snapshot is None:
            raise ReplicationError(
                f"gateway {name!r} cannot attach from a log without a base "
                f"snapshot (base v{log.base_version}); re-attach from the store"
            )
        # Verify the snapshot *before* constructing the replica: building
        # it would subscribe the enforcer to the blank shadow store, and
        # a tampered snapshot must not leave a previously-configured
        # enforcer reset to allow-all as a side effect of the failure.
        log.snapshot.state()
        replica = cls(
            enforcer, PolicyStore(name="unattached", compact_every=compact_every), name=name
        )
        replica.bootstrap(log.snapshot)
        replica.catch_up(log)
        return replica

    def bootstrap(self, snapshot: SnapshotRecord) -> None:
        """Adopt a log's base snapshot as this replica's state.

        The parsed rule table is re-hashed against the snapshot's
        chained fingerprint *before* anything reaches the enforcer — a
        tampered snapshot raises :class:`ReplicationError` instead of
        seeding a forked policy.  Counts as one applied record.
        """
        if snapshot.version < self.version:
            raise ReplicationError(
                f"replica {self.name!r} at v{self.version} refuses to regress "
                f"to snapshot @v{snapshot.version}"
            )
        rules, default = snapshot.state()  # fingerprint-verified
        self._shadow._adopt_state(rules, default, snapshot.version)
        self.records_applied += 1

    @property
    def version(self) -> int:
        """The policy version this replica has converged to."""
        return self._shadow.version

    def fingerprint(self) -> str:
        return self._shadow.fingerprint()

    def snapshot(self) -> Policy:
        return self._shadow.snapshot()

    # -- convergence -------------------------------------------------------------------

    def apply_delta(self, record: DeltaLogRecord) -> bool:
        """Consume one log record; returns False if already applied.

        Records must arrive contiguously (the log replays gaps —
        :meth:`catch_up`); an update record is re-applied through the
        shadow store so the local enforcer gets the same surgical delta
        the head fanned out, a sync record installs the full replicated
        table.  Fingerprints are verified before (updates) and after
        (always) the apply.
        """
        if record.version <= self.version:
            return False
        if record.version != self.version + 1:
            raise ReplicationError(
                f"replica {self.name!r} at v{self.version} cannot apply "
                f"non-contiguous record v{record.version}; catch up from the log"
            )
        if record.kind == "sync":
            if record.rules is None:
                raise ReplicationError(
                    f"record v{record.version} is an opaque sync (unserializable "
                    f"rules); replica {self.name!r} must re-attach from the store"
                )
            rules = dict(_rule_from_payload(body) for body in record.rules)
            self._shadow._adopt_state(
                rules, PolicyAction(record.default_action), record.version
            )
        elif record.kind == "update":
            if record.parent_fingerprint != self.fingerprint():
                raise ReplicationError(
                    f"replica {self.name!r} diverged: v{self.version} state does "
                    f"not match record v{record.version}'s parent fingerprint"
                )
            try:
                self._shadow.apply(record.as_update())
            except PolicyUpdateError as exc:
                raise ReplicationError(
                    f"replica {self.name!r} failed to replay record "
                    f"v{record.version}: {exc}"
                ) from exc
        else:
            raise ReplicationError(f"unknown record kind: {record.kind!r}")
        if self.fingerprint() != record.fingerprint:
            raise ReplicationError(
                f"replica {self.name!r} hash mismatch after applying record "
                f"v{record.version}; state diverged from the head"
            )
        self.records_applied += 1
        return True

    def catch_up(self, log: DeltaLog, target_version: int | None = None) -> int:
        """Converge on ``log`` (up to ``target_version``); returns how
        many records were applied, the snapshot bootstrap included.

        A replica still within the log's record range replays the
        missing suffix.  One that fell behind a compaction (its version
        predates ``log.base_version``) cannot replay the folded prefix;
        it re-bootstraps from the base snapshot instead, then replays
        the suffix — or gets a clear :class:`ReplicationError` when the
        log carries no snapshot to bootstrap from.
        """
        applied = 0
        if self.version < log.base_version:
            if target_version is not None and target_version < log.base_version:
                raise ReplicationError(
                    f"replica {self.name!r} at v{self.version} cannot stop at "
                    f"v{target_version}: the log compacted history through "
                    f"v{log.base_version}"
                )
            if log.snapshot is None:
                # Same clear refusal `since` gives: the prefix is gone
                # and there is no snapshot to stand in for it.
                log.since(self.version)
            self.bootstrap(log.snapshot)
            applied += 1
        for record in log.since(self.version):
            if target_version is not None and record.version > target_version:
                break
            if self.apply_delta(record):
                applied += 1
        return applied

    def lag(self, log: DeltaLog) -> int:
        """How many committed versions this replica is behind the log head."""
        return max(0, log.head_version - self.version)

    def verify_against(self, store: PolicyStore) -> bool:
        """True when this replica is converged with ``store`` (version and
        rule-table fingerprint both equal)."""
        return self.version == store.version and self.fingerprint() == store.fingerprint()
