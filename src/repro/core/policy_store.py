"""The versioned policy control plane.

The paper treats the company policy as a static blob an administrator
swaps wholesale; at production scale (continuous admin edits over a
gateway serving millions of flows) that model collapses the fast path
exactly when it matters, because every swap recompiles every app and
flushes every cached flow verdict.  This module is the control plane
that replaces it:

* **addressable rules** — every rule in a :class:`PolicyStore` has a
  stable id (``r1``, ``r2``, …) that survives serialization;
* **delta updates** — mutations are :class:`PolicyUpdate` transactions
  built from :class:`AddRule` / :class:`RemoveRule` / :class:`ReplaceRule` /
  :class:`SetDefault` operations, applied atomically; every committed
  transaction bumps a monotonic :attr:`PolicyStore.version`;
* **immutable snapshots** — the store derives frozen
  :class:`~repro.core.policy.Policy` snapshots; data-plane components
  never see a half-applied transaction;
* **surgical propagation** — subscribed enforcers receive a
  :class:`PolicyDelta` naming exactly the rules whose membership
  changed, so they can recompile only the apps those rules can touch
  and invalidate only those apps' flow-cache entries
  (:meth:`repro.core.policy_enforcer.PolicyEnforcer.apply_policy_delta`);
* **first-class serialization** — :meth:`PolicyStore.to_json` /
  :meth:`PolicyStore.from_json` persist rules in the paper's Snippet 1
  grammar (each serialized rule is the grammar rendering, re-parsed on
  load), so the on-disk format round-trips through the same parser the
  text format uses.

``Policy``-level full replacement remains available —
:meth:`PolicyStore.set_policy` records it as one replace-all
transaction — which is what keeps the legacy ``set_policy(policy)``
entry points working as thin compatibility shims.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Iterator

from repro.core.policy import (
    Policy,
    PolicyAction,
    PolicyParseError,
    PolicyRule,
    parse_policy,
)


class PolicyUpdateError(ValueError):
    """Raised when a transaction cannot be applied; the store is unchanged."""


def _next_free_id(taken, next_id: int) -> tuple[str, int]:
    """The next unused ``rN`` id given already-taken ids and a counter."""
    while f"r{next_id}" in taken:
        next_id += 1
    return f"r{next_id}", next_id + 1


def _validate_rule(rule: PolicyRule, rule_id) -> None:
    """Reject rules/ids that :meth:`PolicyStore.from_json` could not re-read.

    Commit-time validation keeps the serialization round-trip total: any
    state :meth:`PolicyStore.apply` accepts, ``from_json(to_json(...))``
    can restore.
    """
    if rule_id is not None and not isinstance(rule_id, str):
        raise PolicyUpdateError(f"rule id must be a string, got: {rule_id!r}")
    if '"' in rule.target:
        raise PolicyUpdateError(
            f"rule target {rule.target!r} cannot be rendered in the Snippet 1 "
            "grammar (double quotes are the target delimiter)"
        )


# -- update operations ----------------------------------------------------------------


@dataclass(frozen=True)
class AddRule:
    """Append ``rule``; ``rule_id`` is allocated at commit time if None."""

    rule: PolicyRule
    rule_id: str | None = None

    def describe(self) -> str:
        rid = self.rule_id or "r?"
        return f"+ {rid} {self.rule.render()}"


@dataclass(frozen=True)
class RemoveRule:
    rule_id: str

    def describe(self) -> str:
        return f"- {self.rule_id}"


@dataclass(frozen=True)
class ReplaceRule:
    """Swap the rule behind ``rule_id`` in place (position preserved)."""

    rule_id: str
    rule: PolicyRule

    def describe(self) -> str:
        return f"~ {self.rule_id} {self.rule.render()}"


@dataclass(frozen=True)
class SetDefault:
    action: PolicyAction

    def describe(self) -> str:
        return f"! default {self.action.value}"


@dataclass
class PolicyUpdate:
    """A batch of operations applied as one atomic transaction.

    The builder methods return ``self`` so updates chain fluently::

        store.apply(
            PolicyUpdate(reason="block flurry")
            .add_rule(PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/flurry"))
            .remove_rule("r3")
        )
    """

    ops: list = field(default_factory=list)
    reason: str = ""

    def add_rule(self, rule: PolicyRule, rule_id: str | None = None) -> "PolicyUpdate":
        self.ops.append(AddRule(rule=rule, rule_id=rule_id))
        return self

    def remove_rule(self, rule_id: str) -> "PolicyUpdate":
        self.ops.append(RemoveRule(rule_id=rule_id))
        return self

    def replace_rule(self, rule_id: str, rule: PolicyRule) -> "PolicyUpdate":
        self.ops.append(ReplaceRule(rule_id=rule_id, rule=rule))
        return self

    def set_default(self, action: PolicyAction) -> "PolicyUpdate":
        self.ops.append(SetDefault(action=action))
        return self

    def describe(self) -> str:
        return "\n".join(op.describe() for op in self.ops) or "(no-op)"

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class PolicyDelta:
    """What subscribers receive after a transaction commits.

    ``changed_rules`` lists every rule whose membership changed (added,
    removed, and both sides of a replace) — the reachability inputs for
    surgical invalidation.  ``full`` is True when the delta's effect
    cannot be localised to the apps those rules touch: the default
    action changed, or the policy transitioned into/out of whitelist
    mode (the presence of *any* allow rule changes the evaluation of
    packets no individual rule matches).

    ``base_rules``/``base_default`` record the store state the delta was
    computed *from*; a subscriber whose active policy does not match the
    base (it was mutated out of band, or synced from elsewhere) must not
    patch incrementally — applying this delta there falls back to a full
    resync to ``policy``, keeping enforcement consistent with the store.
    """

    version: int
    policy: Policy
    changed_rules: tuple[PolicyRule, ...]
    full: bool
    base_rules: tuple[PolicyRule, ...] = ()
    base_default: PolicyAction = PolicyAction.ALLOW
    reason: str = ""


# -- the store -------------------------------------------------------------------------


class PolicyStore:
    """Addressable, versioned rule storage plus subscriber fan-out.

    The store is the single writer: the data plane only ever sees the
    frozen snapshots and deltas it derives.  ``version`` starts at 0 and
    increases by exactly 1 per committed transaction (including
    :meth:`reset_to` full syncs), so two replicas holding the same
    version hold the same rules.
    """

    def __init__(
        self,
        name: str = "policy",
        default_action: PolicyAction = PolicyAction.ALLOW,
    ) -> None:
        self.name = name
        self._rules: dict[str, PolicyRule] = {}
        self._default_action = default_action
        self.version = 0
        self._next_id = 1
        self._snapshot: Policy | None = None
        self._subscribers: list = []

    @classmethod
    def from_policy(cls, policy: Policy, name: str | None = None) -> "PolicyStore":
        """Seed a store (version 0) from an existing policy's rules."""
        store = cls(name=name or policy.name, default_action=policy.default_action)
        for rule in policy.rules:
            store._rules[store._allocate_id(store._rules)] = rule
        return store

    # -- read side ---------------------------------------------------------------------

    @property
    def default_action(self) -> PolicyAction:
        return self._default_action

    def rule_ids(self) -> list[str]:
        return list(self._rules)

    def items(self) -> list[tuple[str, PolicyRule]]:
        return list(self._rules.items())

    def get(self, rule_id: str) -> PolicyRule | None:
        return self._rules.get(rule_id)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[PolicyRule]:
        return iter(self._rules.values())

    def snapshot(self) -> Policy:
        """The current rules as an immutable Policy (cached per version)."""
        if self._snapshot is None:
            self._snapshot = Policy(
                rules=list(self._rules.values()),
                default_action=self._default_action,
                name=f"{self.name}@v{self.version}",
                frozen=True,
            )
        return self._snapshot

    # -- write side --------------------------------------------------------------------

    def _allocate_id(self, taken: dict[str, PolicyRule]) -> str:
        rule_id, self._next_id = _next_free_id(taken, self._next_id)
        return rule_id

    def apply(self, update: PolicyUpdate) -> PolicyDelta:
        """Atomically commit ``update``; bump the version; notify subscribers.

        Validation runs against a working copy, so a transaction that
        fails (unknown or duplicate rule id) raises
        :class:`PolicyUpdateError` and leaves the store untouched.
        """
        base_rules = tuple(self._rules.values())
        base_default = self._default_action
        working = dict(self._rules)
        default = self._default_action
        next_id = self._next_id
        changed: list[PolicyRule] = []
        for op in update.ops:
            if isinstance(op, AddRule):
                _validate_rule(op.rule, op.rule_id)
                rule_id = op.rule_id
                if rule_id is None:
                    rule_id, next_id = _next_free_id(working, next_id)
                elif rule_id in working:
                    raise PolicyUpdateError(f"rule id {rule_id!r} already exists")
                working[rule_id] = op.rule
                changed.append(op.rule)
            elif isinstance(op, RemoveRule):
                if op.rule_id not in working:
                    raise PolicyUpdateError(f"cannot remove unknown rule id {op.rule_id!r}")
                changed.append(working.pop(op.rule_id))
            elif isinstance(op, ReplaceRule):
                _validate_rule(op.rule, op.rule_id)
                old = working.get(op.rule_id)
                if old is None:
                    raise PolicyUpdateError(f"cannot replace unknown rule id {op.rule_id!r}")
                if old != op.rule:
                    changed.extend((old, op.rule))
                working[op.rule_id] = op.rule
            elif isinstance(op, SetDefault):
                default = op.action
            else:
                raise PolicyUpdateError(f"unknown policy operation: {op!r}")

        def has_allow(rules: dict[str, PolicyRule]) -> bool:
            return any(rule.action is PolicyAction.ALLOW for rule in rules.values())

        full = default is not self._default_action
        if has_allow(self._rules) != has_allow(working):
            full = True

        self._rules = working
        self._default_action = default
        self._next_id = next_id
        self.version += 1
        self._snapshot = None
        delta = PolicyDelta(
            version=self.version,
            policy=self.snapshot(),
            changed_rules=tuple(dict.fromkeys(changed)),
            full=full,
            base_rules=base_rules,
            base_default=base_default,
            reason=update.reason,
        )
        self._notify(delta)
        return delta

    def set_policy(self, policy: Policy) -> PolicyDelta:
        """Full replacement, recorded as one replace-all transaction.

        Every old rule is removed and every new rule added, so the delta
        is still surgical per app: apps no rule of either policy touches
        keep their compiled state and cached flows.
        """
        update = PolicyUpdate(reason=f"replace all from {policy.name!r}")
        for rule_id in self._rules:
            update.remove_rule(rule_id)
        for rule in policy.rules:
            update.add_rule(rule)
        if policy.default_action is not self._default_action:
            update.set_default(policy.default_action)
        return self.apply(update)

    def reset_to(self, policy: Policy) -> int:
        """Legacy full sync: adopt ``policy``'s rules and push the caller's
        *object* (not a snapshot) to every subscriber by reference.

        This is the compatibility path behind
        :meth:`repro.core.deployment.BorderPatrolDeployment.set_policy`:
        existing callers rely on the enforcer holding their Policy
        instance so later in-place ``add_rule`` edits keep taking effect.
        Mixing such in-place edits with subsequent :meth:`apply` calls is
        unsupported — the next transaction rebuilds from the store's own
        rule table.
        """
        self._rules = {}
        self._next_id = 1
        for rule in policy.rules:
            self._rules[self._allocate_id(self._rules)] = rule
        self._default_action = policy.default_action
        self.version += 1
        self._snapshot = None
        for subscriber in self._subscribers:
            subscriber.sync_policy(policy, self.version)
        return self.version

    # -- diffing ---------------------------------------------------------------------

    def diff_update(self, target: Policy) -> PolicyUpdate:
        """The smallest transaction turning this store's rules into ``target``'s.

        Rules are matched by value; surviving rules keep their ids.  If
        the edit cannot be expressed as removals plus appended additions
        without reordering the surviving rules (rule order is
        significant: the first matching rule wins ties), the update falls
        back to a full replace-all so snapshot evaluation order is
        preserved exactly.
        """
        update = PolicyUpdate(reason=f"diff to {target.name!r}")
        target_rules = list(target.rules)

        # Multiset of rules present on both sides.
        kept: dict[PolicyRule, int] = {}
        remaining = list(target_rules)
        for rule in self._rules.values():
            if rule in remaining:
                remaining.remove(rule)
                kept[rule] = kept.get(rule, 0) + 1

        def kept_sequence(rules) -> list[PolicyRule]:
            budget = dict(kept)
            sequence = []
            for rule in rules:
                if budget.get(rule, 0) > 0:
                    budget[rule] -= 1
                    sequence.append(rule)
            return sequence

        kept_in_current = kept_sequence(self._rules.values())
        added = remaining  # target rules with no current counterpart, in order
        # After removals the store keeps kept_in_current's order; adds append.
        if kept_in_current + added != target_rules:
            update.reason = f"replace all (reordered) from {target.name!r}"
            for rule_id in self._rules:
                update.remove_rule(rule_id)
            for rule in target_rules:
                update.add_rule(rule)
        else:
            budget = dict(kept)
            for rule_id, rule in self._rules.items():
                if budget.get(rule, 0) > 0:
                    budget[rule] -= 1
                else:
                    update.remove_rule(rule_id)
            for rule in added:
                update.add_rule(rule)
        if target.default_action is not self._default_action:
            update.set_default(target.default_action)
        return update

    # -- subscribers -------------------------------------------------------------------

    def subscribe(self, enforcer, push: bool = True) -> None:
        """Register a data-plane consumer of this store's deltas.

        ``enforcer`` must expose ``apply_policy_delta(delta)`` and
        ``sync_policy(policy, version)`` — both
        :class:`~repro.core.policy_enforcer.PolicyEnforcer` and
        :class:`~repro.netstack.sharding.ShardedEnforcer` do.  With
        ``push`` (the default) the subscriber is immediately fully
        synced to the current snapshot and version; pass ``push=False``
        when the subscriber was constructed from this store's state
        already.
        """
        self._subscribers.append(enforcer)
        if push:
            enforcer.sync_policy(self.snapshot(), self.version)

    def unsubscribe(self, enforcer) -> None:
        if enforcer in self._subscribers:
            self._subscribers.remove(enforcer)

    def _notify(self, delta: PolicyDelta) -> None:
        for subscriber in self._subscribers:
            subscriber.apply_policy_delta(delta)

    # -- persistence -------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize: rules are stored as their Snippet 1 grammar rendering.

        Rules that entered through :meth:`apply` are round-trip-safe by
        construction; seeding paths (:meth:`from_policy`, :meth:`reset_to`)
        stay permissive for legacy enforcement, so unserializable targets
        are rejected here rather than written as unreadable grammar.
        """
        for rule_id, rule in self._rules.items():
            if '"' in rule.target:
                raise PolicyParseError(
                    f"rule {rule_id!r} target {rule.target!r} cannot be rendered "
                    "in the Snippet 1 grammar"
                )
        payload = {
            "name": self.name,
            "version": self.version,
            "default_action": self._default_action.value,
            "rules": [
                {
                    "id": rule_id,
                    "rule": rule.render(),
                    **({"comment": rule.comment} if rule.comment else {}),
                }
                for rule_id, rule in self._rules.items()
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "PolicyStore":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PolicyParseError(f"policy store json is unreadable: {exc}") from exc
        if not isinstance(payload, dict) or "rules" not in payload:
            raise PolicyParseError("policy store json needs a top-level 'rules' list")
        try:
            default_action = PolicyAction(payload.get("default_action", "allow"))
        except ValueError as exc:
            raise PolicyParseError(f"unknown default action: {payload['default_action']!r}") from exc
        store = cls(name=payload.get("name", "policy"), default_action=default_action)
        for body in payload["rules"]:
            if not isinstance(body, dict) or "rule" not in body:
                raise PolicyParseError(f"malformed rule entry in store json: {body!r}")
            parsed = parse_policy(body["rule"])
            if len(parsed.rules) != 1:
                raise PolicyParseError(
                    f"expected exactly one rule per entry, got: {body['rule']!r}"
                )
            rule = parsed.rules[0]
            if body.get("comment"):
                rule = dataclass_replace(rule, comment=body["comment"])
            rule_id = body.get("id") or store._allocate_id(store._rules)
            if not isinstance(rule_id, str):
                raise PolicyParseError(f"rule id must be a string, got: {rule_id!r}")
            if rule_id in store._rules:
                raise PolicyParseError(f"duplicate rule id in store json: {rule_id!r}")
            store._rules[rule_id] = rule
        # Future ids must not collide with loaded numeric ids.
        for rule_id in store._rules:
            if rule_id.startswith("r") and rule_id[1:].isdigit():
                store._next_id = max(store._next_id, int(rule_id[1:]) + 1)
        version = payload.get("version", 0)
        if not isinstance(version, int) or isinstance(version, bool):
            raise PolicyParseError(f"store version must be an integer, got: {version!r}")
        store.version = version
        return store

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "PolicyStore":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
