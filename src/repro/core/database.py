"""The method-signature index database.

The Offline Analyzer produces, for every managed app, a deterministic
list of the app's method signatures; the position of a signature in the
list *is* its index (paper §IV-A1, §V-A).  The database is keyed by the
apk's md5 and is shared — through this module's
:func:`canonical_signature_order` — with the Context Manager, so both
sides of the wire derive exactly the same mapping.

The prototype serialises the database as json "for its ease of use and
portability"; :meth:`SignatureDatabase.to_json` /
:meth:`SignatureDatabase.from_json` keep that interface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.dex.hierarchy import ClassHierarchy
from repro.dex.model import DexFile
from repro.dex.signature import MethodSignature


def canonical_signature_order(dex_files: Iterable[DexFile]) -> list[MethodSignature]:
    """The deterministic signature ordering shared by analyzer and device.

    Classes are ordered topologically (parents before children, ties
    broken lexicographically by descriptor) and, within a class, methods
    are ordered by their full signature.  Because the input is the app's
    own dex content, the resulting order — and therefore every
    signature's index — is identical no matter where it is computed.
    """
    hierarchy = ClassHierarchy.from_dex_files(dex_files)
    ordered: list[MethodSignature] = []
    for class_def in hierarchy.topological_classes():
        ordered.extend(
            sorted((m.signature for m in class_def.methods), key=MethodSignature.sort_key)
        )
    return ordered


@dataclass
class DatabaseEntry:
    """The signature index mapping of one app."""

    md5: str
    app_id: str
    package_name: str
    signatures: list[str]
    _index_of: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index_of:
            self._index_of = {sig: i for i, sig in enumerate(self.signatures)}

    @property
    def method_count(self) -> int:
        return len(self.signatures)

    def signature_at(self, index: int) -> str:
        if not 0 <= index < len(self.signatures):
            raise IndexError(
                f"index {index} out of range for {self.package_name} "
                f"({len(self.signatures)} methods)"
            )
        return self.signatures[index]

    def index_of(self, signature: MethodSignature | str) -> int:
        key = str(signature)
        try:
            return self._index_of[key]
        except KeyError as exc:
            raise KeyError(f"{key} is not a method of {self.package_name}") from exc

    def contains(self, signature: MethodSignature | str) -> bool:
        return str(signature) in self._index_of

    def decode_indexes(self, indexes: Iterable[int]) -> list[str]:
        """Map a sequence of on-wire indexes back to signature strings."""
        return [self.signature_at(i) for i in indexes]

    def matching_indexes(self, predicate) -> frozenset[int]:
        """Indexes of every signature satisfying ``predicate``.

        This is the primitive :meth:`repro.core.policy.Policy.compile`
        builds on: a policy rule's string matcher is evaluated once per
        signature here, so the enforcement hot path can test raw on-wire
        indexes against the resulting set without decoding strings.
        """
        return frozenset(i for i, sig in enumerate(self.signatures) if predicate(sig))


class SignatureDatabase:
    """All per-app signature mappings known to the enterprise."""

    def __init__(self) -> None:
        self._by_md5: dict[str, DatabaseEntry] = {}
        self._by_app_id: dict[str, DatabaseEntry] = {}
        #: Monotonic change counter.  Compiled policies and flow caches
        #: snapshot it so they can detect (and lazily invalidate on) any
        #: enrolment or removal that happened after they were built.
        self.generation = 0

    # -- population -------------------------------------------------------------

    def add(self, entry: DatabaseEntry) -> None:
        self._by_md5[entry.md5] = entry
        self._by_app_id[entry.app_id] = entry
        self.generation += 1

    def remove(self, md5: str) -> None:
        entry = self._by_md5.pop(md5, None)
        if entry is not None:
            self._by_app_id.pop(entry.app_id, None)
            self.generation += 1

    # -- lookup ------------------------------------------------------------------

    def lookup_md5(self, md5: str) -> DatabaseEntry | None:
        return self._by_md5.get(md5)

    def lookup_app_id(self, app_id: str) -> DatabaseEntry | None:
        """Lookup by the truncated on-wire hash (what the Policy Enforcer sees)."""
        return self._by_app_id.get(app_id)

    def entries(self) -> list[DatabaseEntry]:
        return list(self._by_md5.values())

    def packages(self) -> list[str]:
        return sorted(e.package_name for e in self._by_md5.values())

    def __len__(self) -> int:
        return len(self._by_md5)

    def __contains__(self, key: str) -> bool:
        return key in self._by_md5 or key in self._by_app_id

    # -- persistence --------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            md5: {
                "app_id": entry.app_id,
                "package": entry.package_name,
                "signatures": entry.signatures,
            }
            for md5, entry in self._by_md5.items()
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SignatureDatabase":
        database = cls()
        payload = json.loads(text)
        for md5, body in payload.items():
            database.add(
                DatabaseEntry(
                    md5=md5,
                    app_id=body["app_id"],
                    package_name=body["package"],
                    signatures=list(body["signatures"]),
                )
            )
        return database

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "SignatureDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
