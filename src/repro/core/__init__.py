"""BorderPatrol — the paper's primary contribution.

The four runtime components plus the offline tooling (paper §IV/§V):

* :class:`~repro.core.offline_analyzer.OfflineAnalyzer` — builds the
  per-app method-signature index database from apk files.
* :class:`~repro.core.context_manager.ContextManager` — the on-device
  Xposed module: captures the Java call stack when a socket connects,
  encodes it and writes it into the socket's ``IP_OPTIONS``.
* :class:`~repro.core.policy_enforcer.PolicyEnforcer` — the NFQUEUE
  consumer at the network border that decodes the tag and applies the
  company policy.
* :class:`~repro.core.packet_sanitizer.PacketSanitizer` — strips the tag
  from policy-conforming packets before they leave the perimeter.
* :class:`~repro.core.policy_extractor.PolicyExtractor` — the two-run
  differential tool that proposes policies to administrators.
* :class:`~repro.core.deployment.BorderPatrolDeployment` — wires all of
  the above into an enterprise network and provisions devices.
"""

from repro.core.encoding import (
    ContextTag,
    StackTraceEncoder,
    EncodingError,
    IndexWidth,
)
from repro.core.database import (
    SignatureDatabase,
    DatabaseEntry,
    canonical_signature_order,
)
from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.policy import (
    PolicyAction,
    PolicyLevel,
    PolicyRule,
    Policy,
    PolicyDecision,
    DecodedContext,
    PolicyParseError,
    parse_policy,
    CompiledPolicy,
    CompiledAppPolicy,
    CompiledRule,
)
from repro.core.policy_store import (
    AddRule,
    DeltaLog,
    DeltaLogRecord,
    GatewayReplica,
    PolicyDelta,
    PolicyStore,
    PolicyUpdate,
    PolicyUpdateError,
    RemoveRule,
    ReplaceRule,
    ReplicationError,
    SetDefault,
)
from repro.core.context_manager import ContextManager, ContextManagerMode
from repro.core.policy_enforcer import PolicyEnforcer, EnforcementRecord, FlowCache
from repro.core.packet_sanitizer import PacketSanitizer
from repro.core.policy_extractor import PolicyExtractor, ProfileRun
from repro.core.deployment import BorderPatrolDeployment
from repro.core.fleet import FleetBatchResult, GatewayFleet

__all__ = [
    "ContextTag",
    "StackTraceEncoder",
    "EncodingError",
    "IndexWidth",
    "SignatureDatabase",
    "DatabaseEntry",
    "canonical_signature_order",
    "OfflineAnalyzer",
    "PolicyAction",
    "PolicyLevel",
    "PolicyRule",
    "Policy",
    "PolicyDecision",
    "DecodedContext",
    "PolicyParseError",
    "parse_policy",
    "CompiledPolicy",
    "CompiledAppPolicy",
    "CompiledRule",
    "PolicyStore",
    "PolicyUpdate",
    "PolicyUpdateError",
    "PolicyDelta",
    "DeltaLog",
    "DeltaLogRecord",
    "GatewayReplica",
    "ReplicationError",
    "AddRule",
    "RemoveRule",
    "ReplaceRule",
    "SetDefault",
    "ContextManager",
    "ContextManagerMode",
    "PolicyEnforcer",
    "EnforcementRecord",
    "FlowCache",
    "PacketSanitizer",
    "PolicyExtractor",
    "ProfileRun",
    "BorderPatrolDeployment",
    "GatewayFleet",
    "FleetBatchResult",
]
