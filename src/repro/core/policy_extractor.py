"""The Policy Extractor — the administrator-assist tool (paper §V-E).

Administrators run an app twice: first exercising only the allowed
functionalities (the *baseline* profile), then exercising the
undesirable functionalities.  The Policy Extractor diffs the method
signatures observed in the two runs' stack traces, keeps the ones that
appear only in the undesirable run, and turns them into policy rules at
a requested enforcement level (method, class or library).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.dex.signature import MethodSignature


@dataclass
class ProfileRun:
    """The decoded stack traces observed during one guided app run."""

    label: str
    stacks: list[tuple[str, ...]] = field(default_factory=list)

    def add_stack(self, signatures: Iterable[str]) -> None:
        self.stacks.append(tuple(signatures))

    def signature_set(self) -> set[str]:
        return {signature for stack in self.stacks for signature in stack}

    @property
    def stack_count(self) -> int:
        return len(self.stacks)


@dataclass(frozen=True)
class ExtractionResult:
    """The diff between two profile runs plus the generated policy."""

    unique_signatures: tuple[str, ...]
    policy: Policy

    @property
    def rule_count(self) -> int:
        return len(self.policy)


class PolicyExtractor:
    """Differential policy construction from two guided runs."""

    def __init__(self, level: PolicyLevel = PolicyLevel.METHOD) -> None:
        if level is PolicyLevel.HASH:
            raise ValueError("the extractor generates code-level rules, not hash rules")
        self.level = level

    # -- target derivation -------------------------------------------------------------

    def _target_for(self, signature: str) -> str | None:
        try:
            parsed = MethodSignature.parse(signature)
        except ValueError:
            return None
        if self.level is PolicyLevel.METHOD:
            return str(parsed)
        if self.level is PolicyLevel.CLASS:
            return parsed.slash_class
        return parsed.library or None

    # -- extraction ----------------------------------------------------------------------

    def unique_signatures(self, baseline: ProfileRun, undesired: ProfileRun) -> list[str]:
        """Signatures seen in the undesired run but never in the baseline run."""
        return sorted(undesired.signature_set() - baseline.signature_set())

    def extract(
        self,
        baseline: ProfileRun,
        undesired: ProfileRun,
        policy_name: str = "extracted-policy",
    ) -> ExtractionResult:
        """Build a deny policy for the functionality unique to the undesired run."""
        unique = self.unique_signatures(baseline, undesired)
        targets: list[str] = []
        seen: set[str] = set()
        for signature in unique:
            target = self._target_for(signature)
            if target is None or target in seen:
                continue
            seen.add(target)
            targets.append(target)
        policy = Policy(name=policy_name)
        for target in targets:
            policy.add_rule(
                PolicyRule(
                    action=PolicyAction.DENY,
                    level=self.level,
                    target=target,
                    comment=f"extracted from run {undesired.label!r}",
                )
            )
        return ExtractionResult(unique_signatures=tuple(unique), policy=policy)
