"""The Packet Sanitizer.

Policy-conforming packets still carry BorderPatrol's context tag when
they leave the Policy Enforcer.  Routers on the public Internet drop
packets with IP options (RFC 7126 and vendor guidance), and the tag
itself leaks execution-context information (app identity, loaded
libraries) that must not escape the corporate perimeter.  The Packet
Sanitizer therefore strips ``IP_OPTIONS`` from every outbound packet
before it crosses the border (paper §IV-A4, §V-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netstack.ip import BORDERPATROL_OPTION_TYPE, IPPacket
from repro.netstack.netfilter import Verdict


@dataclass
class SanitizerStats:
    packets_seen: int = 0
    packets_sanitized: int = 0
    packets_untouched: int = 0


class PacketSanitizer:
    """NFQUEUE consumer that removes IP options from conforming packets."""

    def __init__(self, strip_all_options: bool = True) -> None:
        #: When True (default, matching the prototype) the whole options field
        #: is cleared; when False only the BorderPatrol option is removed and
        #: unrelated options (e.g. timestamps) survive.
        self.strip_all_options = strip_all_options
        self.stats = SanitizerStats()

    def process(self, packet: IPPacket) -> tuple[Verdict, IPPacket]:
        self.stats.packets_seen += 1
        if not packet.has_options:
            self.stats.packets_untouched += 1
            return Verdict.ACCEPT, packet
        if self.strip_all_options:
            sanitized = packet.stripped()
        else:
            remaining = packet.options.without(BORDERPATROL_OPTION_TYPE)
            sanitized = packet.with_options(remaining)
        if sanitized.options.wire_length == packet.options.wire_length:
            self.stats.packets_untouched += 1
            return Verdict.ACCEPT, packet
        self.stats.packets_sanitized += 1
        return Verdict.ACCEPT, sanitized
