"""BorderPatrol reproduction (DSN 2019).

A pure-Python reproduction of *BORDERPATROL: Securing BYOD using
fine-grained contextual information* (Zungur, Suarez-Tangil, Stringhini,
Egele — DSN 2019) built on simulated Android / Linux-networking
substrates so the full pipeline — dex analysis, on-device call-stack
tagging in IP options, border-side policy enforcement and packet
sanitisation — runs deterministically on a laptop.

Quick start::

    from repro import BorderPatrolDeployment, EnterpriseNetwork, parse_policy
    from repro.workloads import build_cloud_storage_app

    app = build_cloud_storage_app()
    network = EnterpriseNetwork()
    for endpoint in app.behavior.endpoints():
        network.add_server(endpoint)

    deployment = BorderPatrolDeployment(network=network)
    device = deployment.provision_device()
    process = deployment.install_and_launch(device, app.apk, app.behavior)
    deployment.set_policy(parse_policy('{[deny][method]["%s"]}' % app.signature("upload")))

    process.invoke("download")   # delivered
    process.invoke("upload")     # dropped at the corporate border

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every figure and table.
"""

from repro.core.deployment import BorderPatrolDeployment
from repro.core.context_manager import ContextManager, ContextManagerMode
from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.policy_enforcer import PolicyEnforcer
from repro.core.packet_sanitizer import PacketSanitizer
from repro.core.policy_extractor import PolicyExtractor, ProfileRun
from repro.core.policy import (
    Policy,
    PolicyAction,
    PolicyLevel,
    PolicyRule,
    parse_policy,
)
from repro.core.policy_store import PolicyDelta, PolicyStore, PolicyUpdate
from repro.core.database import SignatureDatabase
from repro.core.encoding import StackTraceEncoder, ContextTag, IndexWidth
from repro.network.topology import EnterpriseNetwork
from repro.android.device import Device, NetworkMode
from repro.android.monkey import MonkeyExerciser

__version__ = "1.0.0"

__all__ = [
    "BorderPatrolDeployment",
    "ContextManager",
    "ContextManagerMode",
    "OfflineAnalyzer",
    "PolicyEnforcer",
    "PacketSanitizer",
    "PolicyExtractor",
    "ProfileRun",
    "Policy",
    "PolicyAction",
    "PolicyLevel",
    "PolicyRule",
    "parse_policy",
    "PolicyStore",
    "PolicyUpdate",
    "PolicyDelta",
    "SignatureDatabase",
    "StackTraceEncoder",
    "ContextTag",
    "IndexWidth",
    "EnterpriseNetwork",
    "Device",
    "NetworkMode",
    "MonkeyExerciser",
    "__version__",
]
