"""The enterprise network: device uplink, gateway, enforcement chain, border.

Packet path (paper Figure 1):

    device --> internal router --> gateway iptables
           --> [NFQUEUE 1: Policy Enforcer] --> [NFQUEUE 2: Packet Sanitizer]
           --> border router --> Internet routers (RFC 7126) --> destination server

The topology itself is policy-agnostic: BorderPatrol, the baselines, or
nothing at all can be bound to the gateway queues.  Experiments read the
attached :class:`~repro.network.capture.TrafficCapture` to see what
happened at each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netstack.clock import SimulatedClock
from repro.netstack.dns import DnsRegistry
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import (
    Iptables,
    IptablesRule,
    QueueConsumer,
    RuleTarget,
    Verdict,
    flow_hash,
)
from repro.netstack.routing import Router, RouterPolicy
from repro.netstack.tcp import FlowTable
from repro.network.capture import CapturePoint, DeliveryReport, TrafficCapture
from repro.network.server import Server

#: Queue numbers used by the standard deployment.
POLICY_ENFORCER_QUEUE = 1
PACKET_SANITIZER_QUEUE = 2
#: Base of the queue range used when the Policy Enforcer is sharded
#: (``NFQUEUE --queue-balance``); shard *i* binds queue ``BASE + i``.
POLICY_ENFORCER_BALANCE_BASE = 100


@dataclass
class NetworkConfig:
    """Knobs for the enterprise topology."""

    internal_subnet: str = "10.10."
    internal_router_latency_ms: float = 0.05
    border_router_latency_ms: float = 0.08
    internet_hop_count: int = 3
    internet_hop_latency_ms: float = 0.02
    #: Internet routers filter packets with IP options (RFC 7126 §4.x) —
    #: the reason the Packet Sanitizer exists.
    internet_drops_ip_options: bool = True
    #: Enforcement gateways at the border.  With more than one, the
    #: internal router spreads device flows across them by flow hash
    #: (ECMP-style), the same way each gateway spreads flows across its
    #: NFQUEUE shards; every gateway runs its own enforcement chain.
    num_gateways: int = 1


class EnterpriseNetwork:
    """A BYOD-enabled corporate network and its path to the Internet."""

    def __init__(
        self,
        clock: SimulatedClock | None = None,
        config: NetworkConfig | None = None,
        dns: DnsRegistry | None = None,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.config = config or NetworkConfig()
        self.dns = dns or DnsRegistry()
        self.capture = TrafficCapture()
        self.flow_table = FlowTable()
        if self.config.num_gateways < 1:
            raise ValueError("the enterprise network needs at least one gateway")
        self.gateways = [Iptables() for _ in range(self.config.num_gateways)]
        self.servers: dict[str, Server] = {}
        self._next_device_host = 2

        self.internal_router = Router(
            name="internal",
            policy=RouterPolicy(drop_packets_with_options=False),
            latency_ms=self.config.internal_router_latency_ms,
        )
        self.border_router = Router(
            name="border",
            policy=RouterPolicy(drop_packets_with_options=False),
            latency_ms=self.config.border_router_latency_ms,
        )
        self.internet_routers = [
            Router(
                name=f"internet-{i}",
                policy=RouterPolicy(
                    drop_packets_with_options=self.config.internet_drops_ip_options
                ),
                latency_ms=self.config.internet_hop_latency_ms,
            )
            for i in range(self.config.internet_hop_count)
        ]

    @property
    def gateway(self) -> Iptables:
        """The first (or only) enforcement gateway — the single-gateway
        topology every pre-fleet call site keeps using unchanged."""
        return self.gateways[0]

    def gateway_for(self, packet: IPPacket) -> Iptables:
        """The gateway this packet's flow is routed to (stable per flow)."""
        return self.gateways[flow_hash(packet) % len(self.gateways)]

    def add_gateway(self) -> Iptables:
        """Grow the border by one gateway (late-joining fleet member).

        The internal router starts hashing flows across the enlarged
        set immediately; the caller installs the enforcement chain
        (:meth:`install_queue_chain`) with the returned gateway's index.
        """
        gateway = Iptables()
        self.gateways.append(gateway)
        return gateway

    # -- address / server management ----------------------------------------------

    def allocate_device_ip(self) -> str:
        ip = f"{self.config.internal_subnet}0.{self._next_device_host}"
        self._next_device_host += 1
        return ip

    def add_server(self, name: str, ip: str | None = None, role: str = "backend",
                   response_size: int = 2048) -> Server:
        """Register a server reachable under ``name``; reuses an existing IP server."""
        address = self.dns.register(name, ip)
        server = self.servers.get(address)
        if server is None:
            server = Server(ip=address, names=(name,), role=role, response_size=response_size)
            self.servers[address] = server
        elif name not in server.names:
            server = Server(
                ip=address,
                names=server.names + (name,),
                role=server.role,
                response_size=server.response_size,
                latency_ms=server.latency_ms,
                received_packets=server.received_packets,
                bytes_received=server.bytes_received,
            )
            self.servers[address] = server
        return server

    def server_for(self, name_or_ip: str) -> Server | None:
        if name_or_ip in self.servers:
            return self.servers[name_or_ip]
        if self.dns.knows_name(name_or_ip):
            return self.servers.get(self.dns.resolve(name_or_ip))
        return None

    # -- enforcement chain configuration ----------------------------------------------

    def install_queue_chain(
        self,
        enforcer: QueueConsumer | None = None,
        sanitizer: QueueConsumer | None = None,
        queue_latency_ms: float = 0.0,
        gateway_index: int = 0,
    ) -> None:
        """Install the standard two-queue chain at one gateway.

        Either consumer may be None (queue stays unbound and fails open),
        which lets the Figure 4 study measure the cost of the queue
        plumbing separately from the cost of the enforcement logic.

        A sharded enforcer (anything exposing a ``shards`` list, e.g.
        :class:`repro.netstack.sharding.ShardedEnforcer`) is installed as
        an ``NFQUEUE --queue-balance`` range instead of a single queue:
        flows are hash-spread across one queue per shard.

        ``gateway_index`` selects which gateway of a multi-gateway
        topology gets the chain; :meth:`install_fleet_queue_chains`
        installs one replica per gateway in one call.
        """
        gateway = self.gateways[gateway_index]
        shards = getattr(enforcer, "shards", None)
        if shards:
            balance_range = (
                POLICY_ENFORCER_BALANCE_BASE,
                POLICY_ENFORCER_BALANCE_BASE + len(shards) - 1,
            )
            gateway.append_rule(
                IptablesRule(
                    target=RuleTarget.QUEUE,
                    queue_balance=balance_range,
                    src_prefix=self.config.internal_subnet,
                    direction="outbound",
                    comment=f"BorderPatrol policy enforcer (queue-balance {balance_range[0]}:{balance_range[1]})",
                )
            )
            gateway.bind_queue_balance(
                POLICY_ENFORCER_BALANCE_BASE, shards, latency_ms=queue_latency_ms
            )
        else:
            gateway.append_rule(
                IptablesRule(
                    target=RuleTarget.QUEUE,
                    queue_num=POLICY_ENFORCER_QUEUE,
                    src_prefix=self.config.internal_subnet,
                    direction="outbound",
                    comment="BorderPatrol policy enforcer",
                )
            )
            enforcer_queue = gateway.queue(POLICY_ENFORCER_QUEUE)
            enforcer_queue.latency_ms = queue_latency_ms
            if enforcer is not None:
                enforcer_queue.bind(enforcer)
        gateway.append_rule(
            IptablesRule(
                target=RuleTarget.QUEUE,
                queue_num=PACKET_SANITIZER_QUEUE,
                src_prefix=self.config.internal_subnet,
                direction="outbound",
                comment="BorderPatrol packet sanitizer",
            )
        )
        sanitizer_queue = gateway.queue(PACKET_SANITIZER_QUEUE)
        sanitizer_queue.latency_ms = queue_latency_ms
        if sanitizer is not None:
            sanitizer_queue.bind(sanitizer)

    def install_fleet_queue_chains(
        self,
        fleet,
        sanitizer: QueueConsumer | None = None,
        queue_latency_ms: float = 0.0,
    ) -> None:
        """Install one gateway replica's enforcement chain per gateway.

        ``fleet`` is a :class:`repro.core.fleet.GatewayFleet`; its
        replica count must match this topology's gateway count, since
        both route flows with the same hash — replica *i* enforces
        exactly the flows the internal router sends to gateway *i*.
        """
        replicas = fleet.replicas
        if len(replicas) != len(self.gateways):
            raise ValueError(
                f"fleet has {len(replicas)} gateway replicas but the network "
                f"has {len(self.gateways)} gateways"
            )
        for index, replica in enumerate(replicas):
            self.install_queue_chain(
                enforcer=replica.enforcer,
                sanitizer=sanitizer,
                queue_latency_ms=queue_latency_ms,
                gateway_index=index,
            )

    # -- packet transmission ---------------------------------------------------------

    def transmit(self, packets: list[IPPacket]) -> DeliveryReport:
        """Carry ``packets`` from a device towards their destinations."""
        report = DeliveryReport()
        per_packet_latencies: list[float] = []
        for packet in packets:
            latency, delivered, reason = self._transmit_one(packet)
            per_packet_latencies.append(latency)
            if delivered:
                report.delivered.append(packet)
            else:
                report.dropped.append(packet)
                report.dropped_by[packet.packet_id] = reason
        report.latency_ms = max(per_packet_latencies, default=0.0)
        return report

    def _transmit_one(self, packet: IPPacket) -> tuple[float, bool, str]:
        now = self.clock.now()
        self.capture.record(CapturePoint.DEVICE_EGRESS, packet, now)
        self.flow_table.observe(packet)
        latency = 0.0

        # Internal router hop.
        latency += self.internal_router.latency_ms
        routed = self.internal_router.forward(packet)
        if routed is None:
            self.capture.record(CapturePoint.DROPPED_POLICY, packet, now)
            return latency, False, "internal-router"

        # Gateway: iptables chain with the enforcement queues.  Multi-
        # gateway topologies spread flows across gateways by flow hash,
        # so every packet of a flow traverses the same enforcement chain.
        self.capture.record(CapturePoint.PRE_ENFORCER, routed, now)
        verdict, processed, queue_latency = self.gateway_for(routed).process(routed)
        latency += queue_latency
        if verdict is Verdict.DROP:
            self.capture.record(CapturePoint.DROPPED_POLICY, routed, now)
            return latency, False, "policy"
        self.capture.record(CapturePoint.POST_ENFORCER, processed, now)
        if not processed.has_options:
            self.capture.record(CapturePoint.POST_SANITIZER, processed, now)

        # Border router and the public Internet.
        latency += self.border_router.latency_ms
        outbound = self.border_router.forward(processed)
        if outbound is None:
            self.capture.record(CapturePoint.DROPPED_WAN, processed, now)
            return latency, False, "border-router"
        self.capture.record(CapturePoint.WAN, outbound, now)
        for router in self.internet_routers:
            latency += router.latency_ms
            outbound = router.forward(outbound)
            if outbound is None:
                self.capture.record(CapturePoint.DROPPED_WAN, processed, now)
                return latency, False, "rfc7126"

        # Destination server.
        server = self.servers.get(outbound.dst_ip)
        if server is None:
            self.capture.record(CapturePoint.DROPPED_WAN, outbound, now)
            return latency, False, "no-route"
        latency += server.latency_ms
        server.handle(outbound)
        self.capture.record(CapturePoint.DELIVERED, outbound, now)
        return latency, True, ""

    # -- convenience inspection -----------------------------------------------------

    def delivered_packets(self) -> list[IPPacket]:
        return self.capture.at(CapturePoint.DELIVERED)

    def dropped_by_policy(self) -> list[IPPacket]:
        return self.capture.at(CapturePoint.DROPPED_POLICY)

    def tagged_packets_at_device(self) -> list[IPPacket]:
        return self.capture.tagged(CapturePoint.DEVICE_EGRESS)

    def reset_observations(self) -> None:
        self.capture.clear()
        for server in self.servers.values():
            server.reset()
