"""Remote servers.

Servers terminate the traffic the corpus and case-study apps generate:
app backends, analytics collectors, ad networks, cloud-storage APIs and
the host-local HTTP server the Figure 4 stress test talks to.  A server
only needs to account for what it received and decide how many bytes it
would send back; payload content is never modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.netstack.ip import IPPacket

#: Size of the static HTML page served by the stress-test server (§VI-D).
STRESS_PAGE_BYTES = 297


@dataclass
class Server:
    """A network endpoint reachable at one IP address under one or more names."""

    ip: str
    names: tuple[str, ...] = ()
    role: str = "backend"
    response_size: int | Callable[[IPPacket], int] = 2048
    latency_ms: float = 0.2
    received_packets: list[IPPacket] = field(default_factory=list)
    bytes_received: int = 0

    def handle(self, packet: IPPacket) -> int:
        """Receive ``packet`` and return the size of the response it would send."""
        self.received_packets.append(packet)
        self.bytes_received += packet.payload_size
        if callable(self.response_size):
            return self.response_size(packet)
        return self.response_size

    @property
    def packets_received(self) -> int:
        return len(self.received_packets)

    def received_from(self, src_ip: str) -> list[IPPacket]:
        return [p for p in self.received_packets if p.src_ip == src_ip]

    def received_options(self) -> list[IPPacket]:
        """Packets that arrived still carrying IP options.

        A correctly deployed Packet Sanitizer means this list stays
        empty for every server outside the corporate perimeter — the
        privacy property discussed in §IV-A4.
        """
        return [p for p in self.received_packets if p.has_options]

    def reset(self) -> None:
        self.received_packets.clear()
        self.bytes_received = 0


def stress_test_server(ip: str, name: str = "stress.local") -> Server:
    """The host-local SimpleHTTPServer used by the performance evaluation."""
    return Server(
        ip=ip,
        names=(name,),
        role="stress",
        response_size=STRESS_PAGE_BYTES,
        latency_ms=0.05,
    )
