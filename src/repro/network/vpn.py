"""Work-profile VPN routing.

The discussion (§VII "Security", "Compatibility") notes that BYOD
frameworks can force all work-profile traffic over a VPN back into the
enterprise network, so BorderPatrol's border enforcement still mediates
packets when the employee is off premises, while personal-profile
traffic travels the mobile network untouched.  :class:`VpnTunnel`
models that split: work-profile packets are re-sourced from the tunnel
address and handed to the enterprise network; personal traffic bypasses
it entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.netstack.ip import IPPacket
from repro.network.capture import DeliveryReport
from repro.network.topology import EnterpriseNetwork


@dataclass
class VpnTunnel:
    """A per-device VPN tunnel into the enterprise network."""

    network: EnterpriseNetwork
    tunnel_ip: str = ""
    connected: bool = True
    packets_tunnelled: int = 0
    packets_bypassed: int = 0

    def __post_init__(self) -> None:
        if not self.tunnel_ip:
            self.tunnel_ip = self.network.allocate_device_ip()

    def send_work_traffic(self, packets: list[IPPacket]) -> DeliveryReport:
        """Route work-profile packets through the tunnel into the enterprise."""
        if not self.connected:
            report = DeliveryReport(dropped=list(packets))
            for packet in packets:
                report.dropped_by[packet.packet_id] = "vpn-disconnected"
            return report
        tunnelled = [replace(p, src_ip=self.tunnel_ip) for p in packets]
        self.packets_tunnelled += len(tunnelled)
        return self.network.transmit(tunnelled)

    def send_personal_traffic(self, packets: list[IPPacket]) -> DeliveryReport:
        """Personal-profile traffic bypasses the enterprise network entirely."""
        self.packets_bypassed += len(packets)
        return DeliveryReport(delivered=list(packets), latency_ms=0.5)

    def disconnect(self) -> None:
        self.connected = False

    def reconnect(self) -> None:
        self.connected = True
