"""Traffic capture and delivery reporting.

Experiments need to see packets at several points: as they leave the
device (with BorderPatrol's tag attached), before and after the Policy
Enforcer, after the Packet Sanitizer, and at the destination server.
The validation study in §VI-B1 explicitly inspects "the network traffic
before and after the Policy Enforcer"; :class:`TrafficCapture` provides
that visibility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.netstack.ip import IPPacket


class CapturePoint(str, enum.Enum):
    """Where in the topology a packet was observed."""

    DEVICE_EGRESS = "device_egress"
    PRE_ENFORCER = "pre_enforcer"
    POST_ENFORCER = "post_enforcer"
    POST_SANITIZER = "post_sanitizer"
    WAN = "wan"
    DELIVERED = "delivered"
    DROPPED_POLICY = "dropped_policy"
    DROPPED_WAN = "dropped_wan"


@dataclass(frozen=True)
class CapturedPacket:
    """One observation of a packet at a capture point."""

    point: CapturePoint
    packet: IPPacket
    timestamp_ms: float = 0.0


@dataclass
class TrafficCapture:
    """An append-only log of packet observations."""

    records: list[CapturedPacket] = field(default_factory=list)

    def record(self, point: CapturePoint, packet: IPPacket, timestamp_ms: float = 0.0) -> None:
        self.records.append(CapturedPacket(point=point, packet=packet, timestamp_ms=timestamp_ms))

    def at(self, point: CapturePoint) -> list[IPPacket]:
        return [r.packet for r in self.records if r.point is point]

    def packets(self) -> list[IPPacket]:
        return [r.packet for r in self.records]

    def count(self, point: CapturePoint) -> int:
        return sum(1 for r in self.records if r.point is point)

    def to_destination(self, dst_ip: str, point: CapturePoint) -> list[IPPacket]:
        return [p for p in self.at(point) if p.dst_ip == dst_ip]

    def tagged(self, point: CapturePoint) -> list[IPPacket]:
        """Packets observed at ``point`` that still carry IP options."""
        return [p for p in self.at(point) if p.has_options]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CapturedPacket]:
        return iter(self.records)


@dataclass
class DeliveryReport:
    """Outcome of transmitting a batch of packets through the network."""

    delivered: list[IPPacket] = field(default_factory=list)
    dropped: list[IPPacket] = field(default_factory=list)
    dropped_by: dict[int, str] = field(default_factory=dict)
    latency_ms: float = 0.0

    @property
    def all_delivered(self) -> bool:
        return not self.dropped

    @property
    def total(self) -> int:
        return len(self.delivered) + len(self.dropped)

    def drop_reasons(self) -> set[str]:
        return set(self.dropped_by.values())

    def merge(self, other: "DeliveryReport") -> "DeliveryReport":
        merged = DeliveryReport(
            delivered=self.delivered + other.delivered,
            dropped=self.dropped + other.dropped,
            latency_ms=self.latency_ms + other.latency_ms,
        )
        merged.dropped_by = {**self.dropped_by, **other.dropped_by}
        return merged


def summarize(reports: Iterable[DeliveryReport]) -> DeliveryReport:
    """Fold many per-request reports into one aggregate."""
    total = DeliveryReport()
    for report in reports:
        total = total.merge(report)
    return total
