"""Enterprise network topology.

The paper places BorderPatrol's enforcement components at strategic
locations inside the corporate network (Figure 1): provisioned devices
attach to the internal network, their traffic crosses a gateway where
iptables redirects packets into the Policy Enforcer and Packet
Sanitizer queues, and only then does traffic exit through the border
router towards the public Internet, whose routers drop packets that
still carry IP options (RFC 7126).  This package wires the netstack
primitives into that topology and records traffic at well-defined
capture points so experiments can inspect what happened at each stage.
"""

from repro.network.capture import (
    CapturePoint,
    CapturedPacket,
    TrafficCapture,
    DeliveryReport,
)
from repro.network.server import Server
from repro.network.topology import EnterpriseNetwork, NetworkConfig
from repro.network.vpn import VpnTunnel

__all__ = [
    "CapturePoint",
    "CapturedPacket",
    "TrafficCapture",
    "DeliveryReport",
    "Server",
    "EnterpriseNetwork",
    "NetworkConfig",
    "VpnTunnel",
]
