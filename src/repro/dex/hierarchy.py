"""Class hierarchy graph built from dex files.

The paper (§II-A) notes that the class hierarchy of a Java app is a
graph representing inheritance relationships and that related classes
are bundled into packages.  The Offline Analyzer orders method
signatures "topologically for consistency"; :class:`ClassHierarchy`
provides that topological view along with the package tree the analysis
in §VI-B uses to decide whether two stack traces originate from the
same Java package.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.dex.model import ClassDef, DexFile

_OBJECT = "Ljava/lang/Object;"


@dataclass
class ClassHierarchy:
    """Inheritance graph over the classes of one (multi-dex) app."""

    classes: dict[str, ClassDef] = field(default_factory=dict)
    _children: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))

    @classmethod
    def from_dex_files(cls, dex_files: Iterable[DexFile]) -> "ClassHierarchy":
        hierarchy = cls()
        for dex in dex_files:
            for class_def in dex.classes.values():
                hierarchy.add_class(class_def)
        return hierarchy

    def add_class(self, class_def: ClassDef) -> None:
        self.classes[class_def.descriptor] = class_def
        self._children[class_def.superclass_descriptor].add(class_def.descriptor)

    # -- inheritance queries ------------------------------------------------

    def superclass_chain(self, descriptor: str) -> list[str]:
        """All ancestors of ``descriptor`` up to (and including) Object."""
        chain: list[str] = []
        current = self.classes.get(descriptor)
        seen = {descriptor}
        while current is not None:
            parent = current.superclass_descriptor
            if parent in seen:
                break
            chain.append(parent)
            seen.add(parent)
            if parent == _OBJECT:
                break
            current = self.classes.get(parent)
        return chain

    def subclasses(self, descriptor: str, transitive: bool = True) -> set[str]:
        direct = set(self._children.get(descriptor, set()))
        if not transitive:
            return direct
        out: set[str] = set()
        frontier = list(direct)
        while frontier:
            node = frontier.pop()
            if node in out:
                continue
            out.add(node)
            frontier.extend(self._children.get(node, set()))
        return out

    def is_subclass_of(self, descriptor: str, ancestor: str) -> bool:
        return ancestor in self.superclass_chain(descriptor)

    # -- package structure ---------------------------------------------------

    def packages(self) -> set[str]:
        return {c.package for c in self.classes.values()}

    def classes_in_package(self, package: str, include_subpackages: bool = True) -> list[ClassDef]:
        out = []
        for class_def in self.classes.values():
            pkg = class_def.package
            if pkg == package or (include_subpackages and pkg.startswith(package + ".")):
                out.append(class_def)
        return out

    def package_tree(self) -> dict[str, set[str]]:
        """Map each package to the set of its direct sub-packages."""
        tree: dict[str, set[str]] = defaultdict(set)
        for package in self.packages():
            parts = package.split(".")
            for i in range(1, len(parts)):
                tree[".".join(parts[:i])].add(".".join(parts[: i + 1]))
        return dict(tree)

    # -- topological ordering -------------------------------------------------

    def topological_classes(self) -> list[ClassDef]:
        """Classes ordered parents-before-children, ties broken by descriptor.

        This is the "topologically organised for consistency" ordering
        the Offline Analyzer uses before assigning sequential indexes
        (§IV-A1); because ties are broken lexicographically, the order is
        deterministic for a given app.
        """
        in_degree: dict[str, int] = {}
        for descriptor, class_def in self.classes.items():
            parent = class_def.superclass_descriptor
            in_degree.setdefault(descriptor, 0)
            if parent in self.classes:
                in_degree[descriptor] = in_degree.get(descriptor, 0) + 1
        ready = sorted(d for d, deg in in_degree.items() if deg == 0)
        ordered: list[ClassDef] = []
        remaining = dict(in_degree)
        while ready:
            descriptor = ready.pop(0)
            ordered.append(self.classes[descriptor])
            newly_ready = []
            for child in self._children.get(descriptor, set()):
                if child not in remaining:
                    continue
                remaining[child] -= 1
                if remaining[child] == 0:
                    newly_ready.append(child)
            ready = sorted(ready + newly_ready)
        if len(ordered) != len(self.classes):
            # Inheritance cycles cannot occur in valid Java but guard anyway.
            missing = [d for d in sorted(self.classes) if all(c.descriptor != d for c in ordered)]
            ordered.extend(self.classes[d] for d in missing)
        return ordered

    def iter_methods_topological(self) -> Iterator:
        for class_def in self.topological_classes():
            yield from class_def.methods

    def __len__(self) -> int:
        return len(self.classes)

    def __contains__(self, descriptor: str) -> bool:
        return descriptor in self.classes
