"""Core data model for the simulated Dalvik executable format.

Only the features BorderPatrol relies on are modelled (paper §II-A):
class definitions with their inheritance relationship, method
definitions with unique signatures, debug line-number tables, and the
65,536-method-reference limit that causes large apps to ship multiple
dex files (paper §VII "Multi-dex file applications").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.dex.signature import MethodSignature

#: Maximum number of method references a single dex file may contain.
#: Apps exceeding this limit must be packaged as multi-dex (paper §VII).
DEX_METHOD_LIMIT = 65_536


class MultiDexError(RuntimeError):
    """Raised when a single dex file would exceed :data:`DEX_METHOD_LIMIT`."""


class AccessFlags(enum.IntFlag):
    """Subset of Dalvik access flags relevant to our model."""

    PUBLIC = 0x0001
    PRIVATE = 0x0002
    PROTECTED = 0x0004
    STATIC = 0x0008
    FINAL = 0x0010
    SYNCHRONIZED = 0x0020
    NATIVE = 0x0100
    INTERFACE = 0x0200
    ABSTRACT = 0x0400
    SYNTHETIC = 0x1000
    CONSTRUCTOR = 0x10000


@dataclass(frozen=True)
class DebugInfo:
    """Debug metadata for a method.

    The Dalvik format can map individual bytecode instructions to the
    source file and line of the Java code that produced them.  The
    Context Manager uses these line numbers to disambiguate overloaded
    methods that share a name (paper §V-B, §VII "Overloaded methods").
    A stripped app carries ``line_start == 0``.
    """

    source_file: str = ""
    line_start: int = 0
    line_end: int = 0

    @property
    def stripped(self) -> bool:
        return self.line_start == 0

    def covers(self, line: int) -> bool:
        """True if ``line`` falls inside this method's line range."""
        if self.stripped:
            return False
        return self.line_start <= line <= self.line_end


@dataclass(frozen=True)
class FieldDef:
    """A class field; carried for structural realism only."""

    name: str
    type_descriptor: str
    access_flags: AccessFlags = AccessFlags.PRIVATE


@dataclass(frozen=True)
class MethodDef:
    """A method definition: signature, flags, code size and debug info."""

    signature: MethodSignature
    access_flags: AccessFlags = AccessFlags.PUBLIC
    code_size: int = 16
    debug: DebugInfo = field(default_factory=DebugInfo)

    @property
    def is_native(self) -> bool:
        return bool(self.access_flags & AccessFlags.NATIVE)

    @property
    def is_constructor(self) -> bool:
        return self.signature.method_name == "<init>"


@dataclass
class ClassDef:
    """A class definition within a dex file."""

    descriptor: str
    superclass_descriptor: str = "Ljava/lang/Object;"
    interfaces: tuple[str, ...] = ()
    access_flags: AccessFlags = AccessFlags.PUBLIC
    source_file: str = ""
    methods: list[MethodDef] = field(default_factory=list)
    fields: list[FieldDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (self.descriptor.startswith("L") and self.descriptor.endswith(";")):
            raise ValueError(f"malformed class descriptor: {self.descriptor!r}")

    @property
    def class_name(self) -> str:
        return self.descriptor[1:-1].replace("/", ".")

    @property
    def package(self) -> str:
        name = self.class_name
        return name.rsplit(".", 1)[0] if "." in name else ""

    def add_method(self, method: MethodDef) -> None:
        if method.signature.class_descriptor != self.descriptor:
            raise ValueError(
                "method signature declares a different class: "
                f"{method.signature.class_descriptor} != {self.descriptor}"
            )
        if any(m.signature == method.signature for m in self.methods):
            raise ValueError(f"duplicate method signature: {method.signature}")
        self.methods.append(method)

    def find_methods(self, method_name: str) -> list[MethodDef]:
        """Return all overloads of ``method_name`` declared by this class."""
        return [m for m in self.methods if m.signature.method_name == method_name]

    def method_for_line(self, line: int) -> MethodDef | None:
        """Resolve a source line number back to the method containing it.

        This is the primitive the Context Manager uses to disambiguate
        overloaded methods from stack-frame line numbers.
        """
        for method in self.methods:
            if method.debug.covers(line):
                return method
        return None


@dataclass
class DexFile:
    """A single ``classes.dex`` file: a collection of class definitions."""

    name: str = "classes.dex"
    classes: dict[str, ClassDef] = field(default_factory=dict)

    def add_class(self, class_def: ClassDef) -> None:
        if class_def.descriptor in self.classes:
            raise ValueError(f"duplicate class {class_def.descriptor}")
        prospective = self.method_count + len(class_def.methods)
        if prospective > DEX_METHOD_LIMIT:
            raise MultiDexError(
                f"{self.name} would contain {prospective} methods, "
                f"exceeding the dex limit of {DEX_METHOD_LIMIT}"
            )
        self.classes[class_def.descriptor] = class_def

    def get_class(self, descriptor: str) -> ClassDef | None:
        return self.classes.get(descriptor)

    @property
    def method_count(self) -> int:
        return sum(len(c.methods) for c in self.classes.values())

    @property
    def class_count(self) -> int:
        return len(self.classes)

    def iter_methods(self) -> Iterator[MethodDef]:
        for class_def in self.classes.values():
            yield from class_def.methods

    def method_signatures(self) -> list[MethodSignature]:
        """All method signatures in this dex file, in declaration order."""
        return [m.signature for m in self.iter_methods()]

    def sorted_signatures(self) -> list[MethodSignature]:
        """Signatures in the deterministic (topological) order used for indexing."""
        return sorted(self.method_signatures(), key=MethodSignature.sort_key)

    def packages(self) -> set[str]:
        return {c.package for c in self.classes.values()}

    def merge(self, others: Iterable["DexFile"]) -> "DexFile":
        """Return a logical union of this dex file with ``others``.

        Multi-dex apps are analysed as the union of their dex files; the
        union may exceed the per-file method limit by design.
        """
        merged = DexFile(name=self.name, classes=dict(self.classes))
        for other in others:
            for class_def in other.classes.values():
                if class_def.descriptor in merged.classes:
                    continue
                merged.classes[class_def.descriptor] = class_def
        return merged
