"""Programmatic construction of dex files.

Real apps arrive as compiled apks; our synthetic corpus builds them
instead.  :class:`DexBuilder` provides a small fluent API for declaring
classes and methods with automatically maintained debug line tables, and
:class:`LibraryTemplate` describes a reusable third-party library (an
analytics SDK, an HTTP client, ...) that can be stamped into many apps,
which is exactly the structural property (shared libraries reused across
apps and across components within an app) that drives the paper's
IP-of-interest analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dex.model import (
    AccessFlags,
    ClassDef,
    DebugInfo,
    DexFile,
    MethodDef,
    DEX_METHOD_LIMIT,
)
from repro.dex.signature import MethodSignature, format_descriptor


@dataclass(frozen=True)
class MethodSpec:
    """Declarative description of a method inside a :class:`LibraryTemplate`."""

    name: str
    parameter_types: tuple[str, ...] = ()
    return_type: str = "void"
    code_size: int = 24
    native: bool = False


@dataclass(frozen=True)
class ClassSpec:
    """Declarative description of a class inside a :class:`LibraryTemplate`."""

    class_name: str
    methods: tuple[MethodSpec, ...]
    superclass: str = "java.lang.Object"


@dataclass(frozen=True)
class LibraryTemplate:
    """A reusable package of classes shared between apps.

    Attributes
    ----------
    name:
        Human-readable library name (``Flurry Analytics``).
    package:
        Root Java package (``com.flurry.sdk``); policy rules at
        *library* level match on this prefix.
    classes:
        The classes the library contributes to an app's dex file.
    category:
        Coarse role of the library (``analytics``, ``advertisement``,
        ``http``, ``cloud``, ``identity``, ``ui``...), used by the
        workload generator and the Li-list construction.
    endpoints:
        DNS names the library talks to at runtime.
    """

    name: str
    package: str
    classes: tuple[ClassSpec, ...]
    category: str = "utility"
    endpoints: tuple[str, ...] = ()

    def method_count(self) -> int:
        return sum(len(c.methods) for c in self.classes)

    def class_names(self) -> list[str]:
        return [c.class_name for c in self.classes]


class DexBuilder:
    """Fluent builder producing :class:`~repro.dex.model.DexFile` objects.

    Line numbers are assigned sequentially per source file so that each
    method occupies a unique, non-overlapping line range — mirroring how
    ``javac``/``dx`` emit debug tables and enabling the Context Manager's
    line-number based overload disambiguation.
    """

    def __init__(self, strip_debug_info: bool = False) -> None:
        self._classes: list[ClassDef] = []
        self._strip_debug_info = strip_debug_info
        self._line_cursors: dict[str, int] = {}

    # -- class/method declaration -------------------------------------------

    def add_class(
        self,
        class_name: str,
        superclass: str = "java.lang.Object",
        source_file: str | None = None,
        interfaces: tuple[str, ...] = (),
    ) -> "_ClassHandle":
        descriptor = format_descriptor(class_name)
        simple_name = class_name.rsplit(".", 1)[-1]
        source = source_file or f"{simple_name}.java"
        class_def = ClassDef(
            descriptor=descriptor,
            superclass_descriptor=format_descriptor(superclass),
            interfaces=tuple(format_descriptor(i) for i in interfaces),
            source_file=source,
        )
        self._classes.append(class_def)
        return _ClassHandle(self, class_def)

    def add_library(self, template: LibraryTemplate) -> list[ClassDef]:
        """Stamp every class of ``template`` into the dex under construction."""
        added = []
        for class_spec in template.classes:
            handle = self.add_class(class_spec.class_name, superclass=class_spec.superclass)
            for method_spec in class_spec.methods:
                handle.add_method(
                    method_spec.name,
                    parameter_types=method_spec.parameter_types,
                    return_type=method_spec.return_type,
                    code_size=method_spec.code_size,
                    native=method_spec.native,
                )
            added.append(handle.class_def)
        return added

    # -- internal helpers -----------------------------------------------------

    def _next_line_range(self, source_file: str, code_size: int) -> tuple[int, int]:
        start = self._line_cursors.get(source_file, 1)
        # A method's source footprint scales loosely with its code size.
        span = max(2, code_size // 4)
        end = start + span
        self._line_cursors[source_file] = end + 2
        return start, end

    def _make_debug(self, source_file: str, code_size: int) -> DebugInfo:
        if self._strip_debug_info:
            return DebugInfo()
        start, end = self._next_line_range(source_file, code_size)
        return DebugInfo(source_file=source_file, line_start=start, line_end=end)

    # -- output ---------------------------------------------------------------

    def total_method_count(self) -> int:
        return sum(len(c.methods) for c in self._classes)

    def build(self) -> DexFile:
        """Build a single dex file; raises if the method limit is exceeded."""
        dex = DexFile()
        for class_def in self._classes:
            dex.add_class(class_def)
        return dex

    def build_multidex(self) -> list[DexFile]:
        """Build one or more dex files, splitting at the 65,536-method limit.

        Classes are never split across dex files, matching the real
        packaging rules.
        """
        dex_files: list[DexFile] = []
        current = DexFile(name="classes.dex")
        count = 0
        for class_def in self._classes:
            n = len(class_def.methods)
            if count + n > DEX_METHOD_LIMIT and count > 0:
                dex_files.append(current)
                current = DexFile(name=f"classes{len(dex_files) + 1}.dex")
                count = 0
            current.add_class(class_def)
            count += n
        dex_files.append(current)
        return dex_files


class _ClassHandle:
    """Handle returned by :meth:`DexBuilder.add_class` for adding methods."""

    def __init__(self, builder: DexBuilder, class_def: ClassDef) -> None:
        self._builder = builder
        self.class_def = class_def

    def add_method(
        self,
        name: str,
        parameter_types: tuple[str, ...] | list[str] = (),
        return_type: str = "void",
        code_size: int = 24,
        native: bool = False,
        static: bool = False,
    ) -> MethodDef:
        signature = MethodSignature.create(
            class_name=self.class_def.class_name,
            method_name=name,
            parameter_types=tuple(parameter_types),
            return_type=return_type,
        )
        flags = AccessFlags.PUBLIC
        if native:
            flags |= AccessFlags.NATIVE
        if static:
            flags |= AccessFlags.STATIC
        if name == "<init>":
            flags |= AccessFlags.CONSTRUCTOR
        method = MethodDef(
            signature=signature,
            access_flags=flags,
            code_size=code_size,
            debug=self._builder._make_debug(self.class_def.source_file, code_size),
        )
        self.class_def.add_method(method)
        return method

    def add_constructor(self, parameter_types: tuple[str, ...] = ()) -> MethodDef:
        return self.add_method("<init>", parameter_types=parameter_types)
