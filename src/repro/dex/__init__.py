"""Dalvik executable (DEX) model.

This package provides an in-memory model of the parts of the Dalvik
``classes.dex`` file format that BorderPatrol's Offline Analyzer and
Context Manager rely on (paper §II-A):

* the class hierarchy (inheritance relationships between classes),
* method signatures (class + method name + parameter types + return type),
* debug information mapping bytecode back to source line numbers, and
* the 65,536-method limit that forces multi-dex packaging.

The real prototype uses ``dexlib2`` to read compiled apks.  In this
reproduction apps are synthetic, so :class:`~repro.dex.builder.DexBuilder`
constructs dex files programmatically and
:class:`~repro.dex.parser.DexParser` re-reads them from a compact binary
serialisation, playing the role dexlib2 plays in the paper.
"""

from repro.dex.signature import MethodSignature, parse_descriptor, format_descriptor
from repro.dex.model import (
    AccessFlags,
    DebugInfo,
    MethodDef,
    FieldDef,
    ClassDef,
    DexFile,
    MultiDexError,
    DEX_METHOD_LIMIT,
)
from repro.dex.builder import DexBuilder, LibraryTemplate
from repro.dex.parser import DexParser, DexSerializer, DexFormatError
from repro.dex.hierarchy import ClassHierarchy

__all__ = [
    "MethodSignature",
    "parse_descriptor",
    "format_descriptor",
    "AccessFlags",
    "DebugInfo",
    "MethodDef",
    "FieldDef",
    "ClassDef",
    "DexFile",
    "MultiDexError",
    "DEX_METHOD_LIMIT",
    "DexBuilder",
    "LibraryTemplate",
    "DexParser",
    "DexSerializer",
    "DexFormatError",
    "ClassHierarchy",
]
