"""Method signatures in Dalvik descriptor notation.

A method is uniquely identified within an app by its *signature*: the
declaring class, the method name, and the ordered list of parameter
types (paper §II-A).  Return types are carried for completeness but do
not participate in overload resolution, matching the Java language
rules.

Signatures are rendered in the smali/dexlib2 notation used by the
paper's policy examples, e.g.::

    Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;

BorderPatrol's policies match signatures at four granularities
(hash < library < class < method); the helpers on
:class:`MethodSignature` expose the library, class and method components
so the policy engine does not need to re-parse strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import total_ordering


_PRIMITIVES = {
    "void": "V",
    "boolean": "Z",
    "byte": "B",
    "short": "S",
    "char": "C",
    "int": "I",
    "long": "J",
    "float": "F",
    "double": "D",
}
_PRIMITIVE_CODES = {v: k for k, v in _PRIMITIVES.items()}

_CLASS_DESCRIPTOR_RE = re.compile(r"^L[^;]+;$")
_SIGNATURE_RE = re.compile(
    r"^(?P<class>L[^;]+;)->(?P<method><?[A-Za-z0-9_$]+>?)\((?P<params>[^)]*)\)(?P<ret>.+)$"
)


def format_descriptor(type_name: str) -> str:
    """Convert a Java type name into a Dalvik type descriptor.

    ``int`` becomes ``I``, ``com.flurry.sdk.Agent`` becomes
    ``Lcom/flurry/sdk/Agent;`` and array types gain one ``[`` per
    dimension (``byte[]`` -> ``[B``).  Already-formatted descriptors are
    returned unchanged.
    """
    name = type_name.strip()
    if not name:
        raise ValueError("empty type name")
    dimensions = 0
    while name.endswith("[]"):
        dimensions += 1
        name = name[:-2].strip()
    if name in _PRIMITIVES:
        descriptor = _PRIMITIVES[name]
    elif name.startswith("[") or (name.startswith("L") and name.endswith(";")):
        descriptor = name
    else:
        descriptor = "L" + name.replace(".", "/") + ";"
    return "[" * dimensions + descriptor


def parse_descriptor(descriptor: str) -> str:
    """Convert a Dalvik type descriptor back into a Java type name."""
    if not descriptor:
        raise ValueError("empty descriptor")
    dimensions = 0
    body = descriptor
    while body.startswith("["):
        dimensions += 1
        body = body[1:]
    if body in _PRIMITIVE_CODES:
        name = _PRIMITIVE_CODES[body]
    elif _CLASS_DESCRIPTOR_RE.match(body):
        name = body[1:-1].replace("/", ".")
    else:
        raise ValueError(f"malformed type descriptor: {descriptor!r}")
    return name + "[]" * dimensions


def split_parameter_descriptors(params: str) -> list[str]:
    """Split the parameter portion of a signature into individual descriptors."""
    out: list[str] = []
    i = 0
    while i < len(params):
        start = i
        while i < len(params) and params[i] == "[":
            i += 1
        if i >= len(params):
            raise ValueError(f"dangling array marker in {params!r}")
        if params[i] == "L":
            end = params.find(";", i)
            if end == -1:
                raise ValueError(f"unterminated class descriptor in {params!r}")
            i = end + 1
        elif params[i] in _PRIMITIVE_CODES:
            i += 1
        else:
            raise ValueError(f"malformed parameter list: {params!r}")
        out.append(params[start:i])
    return out


@total_ordering
@dataclass(frozen=True)
class MethodSignature:
    """A fully qualified Dalvik method signature.

    Attributes
    ----------
    class_descriptor:
        Declaring class in descriptor form, e.g. ``Lcom/flurry/sdk/Agent;``.
    method_name:
        Simple method name; constructors use ``<init>``.
    parameter_descriptors:
        Ordered tuple of parameter type descriptors.
    return_descriptor:
        Return type descriptor, ``V`` for void.
    """

    class_descriptor: str
    method_name: str
    parameter_descriptors: tuple[str, ...] = field(default_factory=tuple)
    return_descriptor: str = "V"

    def __post_init__(self) -> None:
        if not _CLASS_DESCRIPTOR_RE.match(self.class_descriptor):
            raise ValueError(
                f"class descriptor must look like 'Lpkg/Cls;', got {self.class_descriptor!r}"
            )
        if not self.method_name:
            raise ValueError("method name may not be empty")
        object.__setattr__(
            self, "parameter_descriptors", tuple(self.parameter_descriptors)
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def create(
        cls,
        class_name: str,
        method_name: str,
        parameter_types: tuple[str, ...] | list[str] = (),
        return_type: str = "void",
    ) -> "MethodSignature":
        """Build a signature from Java-style type names."""
        return cls(
            class_descriptor=format_descriptor(class_name),
            method_name=method_name,
            parameter_descriptors=tuple(format_descriptor(p) for p in parameter_types),
            return_descriptor=format_descriptor(return_type),
        )

    @classmethod
    def parse(cls, text: str) -> "MethodSignature":
        """Parse the smali-style rendering produced by :meth:`__str__`."""
        match = _SIGNATURE_RE.match(text.strip())
        if match is None:
            raise ValueError(f"malformed method signature: {text!r}")
        return cls(
            class_descriptor=match.group("class"),
            method_name=match.group("method"),
            parameter_descriptors=tuple(
                split_parameter_descriptors(match.group("params"))
            ),
            return_descriptor=match.group("ret"),
        )

    # -- component accessors (policy granularity levels) -------------------

    @property
    def class_name(self) -> str:
        """Java-style fully qualified class name (``com.flurry.sdk.Agent``)."""
        return parse_descriptor(self.class_descriptor)

    @property
    def package(self) -> str:
        """The Java package of the declaring class (``com.flurry.sdk``)."""
        name = self.class_name
        return name.rsplit(".", 1)[0] if "." in name else ""

    @property
    def library(self) -> str:
        """Slash-separated package prefix used by library-level policies.

        The paper's policy examples identify libraries by slash-separated
        prefixes such as ``com/flurry``; this property yields the full
        slash-form package so prefix matching can be applied against it.
        """
        return self.package.replace(".", "/")

    @property
    def slash_class(self) -> str:
        """Slash-separated class path (``com/flurry/sdk/Agent``)."""
        return self.class_name.replace(".", "/")

    @property
    def arity(self) -> int:
        return len(self.parameter_descriptors)

    # -- rendering / ordering ----------------------------------------------

    def __str__(self) -> str:
        params = "".join(self.parameter_descriptors)
        return f"{self.class_descriptor}->{self.method_name}({params}){self.return_descriptor}"

    def sort_key(self) -> tuple[str, str, tuple[str, ...], str]:
        """Deterministic ordering key used by the Offline Analyzer.

        The paper requires that the mapping from signatures to index
        numbers is deterministic in size and ordering (§IV-A1); sorting
        on this key realises that guarantee.
        """
        return (
            self.class_descriptor,
            self.method_name,
            self.parameter_descriptors,
            self.return_descriptor,
        )

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, MethodSignature):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def matches_library(self, library_prefix: str) -> bool:
        """True if this method belongs to ``library_prefix`` (slash or dot form)."""
        prefix = library_prefix.replace(".", "/").strip("/")
        target = self.slash_class
        return target == prefix or target.startswith(prefix + "/")

    def matches_class(self, class_target: str) -> bool:
        """True if this method is declared by ``class_target`` (slash, dot or descriptor form)."""
        if class_target.startswith("L") and class_target.endswith(";"):
            return self.class_descriptor == class_target
        normalised = class_target.replace(".", "/")
        return self.slash_class == normalised
