"""Serialisation and parsing of simulated dex files.

The paper's Offline Analyzer and Context Manager both *parse* dex files
(using dexlib2) rather than receiving in-memory objects.  To keep that
boundary honest, our dex files can be serialised to a compact binary
blob and re-parsed from it; the apk model stores the serialised bytes,
and both BorderPatrol components go through :class:`DexParser` exactly
as the prototype goes through dexlib2.

The format is a simple length-prefixed binary layout (not the real DEX
layout): a magic header, a class count, and per class its descriptor,
superclass, source file and method table with debug line ranges.
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.dex.model import AccessFlags, ClassDef, DebugInfo, DexFile, MethodDef
from repro.dex.signature import MethodSignature

_MAGIC = b"RDEX\x01"


class DexFormatError(ValueError):
    """Raised when a byte blob cannot be parsed as a simulated dex file."""


def _pack_str(value: str) -> bytes:
    data = value.encode("utf-8")
    return struct.pack("<I", len(data)) + data


class _Reader:
    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self._offset = 0

    def read(self, size: int) -> bytes:
        if self._offset + size > len(self._blob):
            raise DexFormatError("truncated dex blob")
        chunk = self._blob[self._offset : self._offset + size]
        self._offset += size
        return chunk

    def read_u32(self) -> int:
        return struct.unpack("<I", self.read(4))[0]

    def read_str(self) -> str:
        length = self.read_u32()
        return self.read(length).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self._offset >= len(self._blob)


class DexSerializer:
    """Serialise :class:`~repro.dex.model.DexFile` objects to bytes."""

    def serialize(self, dex: DexFile) -> bytes:
        parts: list[bytes] = [_MAGIC, _pack_str(dex.name), struct.pack("<I", dex.class_count)]
        for class_def in dex.classes.values():
            parts.append(self._serialize_class(class_def))
        return b"".join(parts)

    def _serialize_class(self, class_def: ClassDef) -> bytes:
        parts = [
            _pack_str(class_def.descriptor),
            _pack_str(class_def.superclass_descriptor),
            _pack_str(class_def.source_file),
            struct.pack("<I", len(class_def.interfaces)),
        ]
        for interface in class_def.interfaces:
            parts.append(_pack_str(interface))
        parts.append(struct.pack("<I", len(class_def.methods)))
        for method in class_def.methods:
            parts.append(self._serialize_method(method))
        return b"".join(parts)

    def _serialize_method(self, method: MethodDef) -> bytes:
        signature = method.signature
        parts = [
            _pack_str(signature.method_name),
            _pack_str(signature.return_descriptor),
            struct.pack("<I", len(signature.parameter_descriptors)),
        ]
        for param in signature.parameter_descriptors:
            parts.append(_pack_str(param))
        parts.append(
            struct.pack(
                "<IIII",
                int(method.access_flags),
                method.code_size,
                method.debug.line_start,
                method.debug.line_end,
            )
        )
        parts.append(_pack_str(method.debug.source_file))
        return b"".join(parts)


class DexParser:
    """Parse serialised dex blobs back into :class:`DexFile` objects.

    Plays the role of dexlib2 in the paper's Offline Analyzer (§V-A)
    and Context Manager (§V-B).
    """

    def parse(self, blob: bytes) -> DexFile:
        reader = _Reader(blob)
        if reader.read(len(_MAGIC)) != _MAGIC:
            raise DexFormatError("bad magic; not a simulated dex blob")
        name = reader.read_str()
        class_count = reader.read_u32()
        dex = DexFile(name=name)
        for _ in range(class_count):
            class_def = self._parse_class(reader)
            dex.classes[class_def.descriptor] = class_def
        return dex

    def _parse_class(self, reader: _Reader) -> ClassDef:
        descriptor = reader.read_str()
        superclass = reader.read_str()
        source_file = reader.read_str()
        interface_count = reader.read_u32()
        interfaces = tuple(reader.read_str() for _ in range(interface_count))
        class_def = ClassDef(
            descriptor=descriptor,
            superclass_descriptor=superclass,
            interfaces=interfaces,
            source_file=source_file,
        )
        method_count = reader.read_u32()
        for _ in range(method_count):
            class_def.methods.append(self._parse_method(reader, descriptor))
        return class_def

    def _parse_method(self, reader: _Reader, class_descriptor: str) -> MethodDef:
        method_name = reader.read_str()
        return_descriptor = reader.read_str()
        param_count = reader.read_u32()
        params = tuple(reader.read_str() for _ in range(param_count))
        access_flags, code_size, line_start, line_end = struct.unpack(
            "<IIII", reader.read(16)
        )
        source_file = reader.read_str()
        signature = MethodSignature(
            class_descriptor=class_descriptor,
            method_name=method_name,
            parameter_descriptors=params,
            return_descriptor=return_descriptor,
        )
        return MethodDef(
            signature=signature,
            access_flags=AccessFlags(access_flags),
            code_size=code_size,
            debug=DebugInfo(
                source_file=source_file, line_start=line_start, line_end=line_end
            ),
        )

    def parse_many(self, blobs: Iterable[bytes]) -> list[DexFile]:
        """Parse every dex blob of a (possibly multi-dex) apk."""
        return [self.parse(blob) for blob in blobs]
