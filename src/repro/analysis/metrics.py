"""Supporting metrics for the discussion-section experiments.

* the truncated-hash collision estimate (§VII "Hash collision"),
  both in closed form and as a seeded Monte-Carlo check;
* precision / recall of enforcement decisions against ground truth;
* flow-size summaries backing the "36 bytes to 480 MB" observation that
  defeats threshold-based upload detection (§VII).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Iterable

from repro.apk.hashing import collision_probability as hash_collision_probability
from repro.apk.hashing import expected_collisions


def monte_carlo_collision_estimate(
    n_apps: int, hash_bits: int, trials: int = 200, seed: int = 1
) -> float:
    """Empirical collision probability over ``trials`` random identifier draws.

    Used to sanity-check the closed-form birthday bound for small hash
    widths where collisions are actually observable.
    """
    if n_apps < 2 or trials <= 0:
        return 0.0
    rng = random.Random(seed)
    space = 2 ** hash_bits
    collisions = 0
    for _ in range(trials):
        seen: set[int] = set()
        collided = False
        for _ in range(n_apps):
            value = rng.randrange(space)
            if value in seen:
                collided = True
                break
            seen.add(value)
        if collided:
            collisions += 1
    return collisions / trials


@dataclass(frozen=True)
class PrecisionRecall:
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def precision_recall(
    dropped_ids: set[int], should_drop_ids: set[int], all_ids: set[int]
) -> PrecisionRecall:
    """Score drop decisions: positives are packets that *should* be dropped."""
    true_positives = len(dropped_ids & should_drop_ids)
    false_positives = len(dropped_ids - should_drop_ids)
    false_negatives = len(should_drop_ids - dropped_ids)
    true_negatives = len(all_ids - dropped_ids - should_drop_ids)
    return PrecisionRecall(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        true_negatives=true_negatives,
    )


@dataclass(frozen=True)
class FlowSizeSummary:
    count: int
    min_bytes: int
    max_bytes: int
    median_bytes: float
    mean_bytes: float

    def spans_orders_of_magnitude(self) -> float:
        """How many decimal orders of magnitude the flow sizes span."""
        import math

        if self.count == 0 or self.min_bytes <= 0:
            return 0.0
        return math.log10(self.max_bytes / self.min_bytes)


def flow_size_summary(flow_sizes: Iterable[int]) -> FlowSizeSummary:
    sizes = sorted(int(s) for s in flow_sizes)
    if not sizes:
        return FlowSizeSummary(count=0, min_bytes=0, max_bytes=0, median_bytes=0.0, mean_bytes=0.0)
    return FlowSizeSummary(
        count=len(sizes),
        min_bytes=sizes[0],
        max_bytes=sizes[-1],
        median_bytes=float(statistics.median(sizes)),
        mean_bytes=float(statistics.fmean(sizes)),
    )
