"""IP-of-interest analysis (paper §VI-B, Figure 3).

An *IP-of-interest* (IoI) is a destination address that receives
packets carrying more than one distinct stack trace from the same app —
the situations where address-based enforcement cannot tell desirable
and undesirable traffic apart and BorderPatrol's contextual tag is the
only discriminator.  The analysis groups decoded stack traces by
(app, destination), counts how many IoIs each app exhibits, and
classifies each IoI by whether its distinct calling contexts originate
from the same Java package (the paper reports 75% same-package / 25%
cross-package, the latter typically via a shared HTTP client library).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.policy_enforcer import EnforcementRecord
from repro.dex.signature import MethodSignature
from repro.netstack.ip import IPPacket


def _package_root(package: str, depth: int = 2) -> str:
    """Collapse a Java package to its root (``com.facebook.appevents`` -> ``com.facebook``).

    The §VI-B statistic asks whether the contexts of an IoI originate
    from "the same Java package"; the paper treats an SDK such as the
    Facebook SDK as one package even though it spans sub-packages, so
    the comparison happens on the first ``depth`` segments.
    """
    parts = package.split(".")
    return ".".join(parts[:depth]) if parts else ""


def _innermost_package(stack: Sequence[str]) -> str:
    """Root package of the innermost resolvable signature of a decoded stack."""
    for signature in stack:
        try:
            return _package_root(MethodSignature.parse(signature).package)
        except ValueError:
            continue
    return ""


def _all_packages(stack: Sequence[str]) -> set[str]:
    packages = set()
    for signature in stack:
        try:
            packages.add(MethodSignature.parse(signature).package)
        except ValueError:
            continue
    return packages


@dataclass
class AppIoIReport:
    """Per-app IoI findings."""

    package_name: str
    #: destination ip -> distinct decoded stacks observed towards it.
    destinations: dict[str, set[tuple[str, ...]]] = field(default_factory=dict)

    def ioi_destinations(self, min_distinct_stacks: int = 2) -> dict[str, set[tuple[str, ...]]]:
        return {
            ip: stacks
            for ip, stacks in self.destinations.items()
            if len(stacks) >= min_distinct_stacks
        }

    def ioi_count(self, min_distinct_stacks: int = 2) -> int:
        return len(self.ioi_destinations(min_distinct_stacks))

    def is_same_package(self, min_distinct_stacks: int = 2) -> bool:
        """True if every IoI's distinct contexts share one originating package.

        The originating package of a context is the package of the
        innermost app/library frame — the code that actually initiated
        the connection.
        """
        for stacks in self.ioi_destinations(min_distinct_stacks).values():
            roots = {_innermost_package(stack) for stack in stacks}
            roots.discard("")
            if len(roots) > 1:
                return False
        return True

    def cross_package_iois(self, min_distinct_stacks: int = 2) -> int:
        count = 0
        for stacks in self.ioi_destinations(min_distinct_stacks).values():
            roots = {_innermost_package(stack) for stack in stacks}
            roots.discard("")
            if len(roots) > 1:
                count += 1
        return count


class IoIAnalysis:
    """Aggregated IoI statistics over a whole corpus run."""

    def __init__(self, reports: Mapping[str, AppIoIReport], total_apps: int | None = None) -> None:
        self.reports = dict(reports)
        self.total_apps = total_apps if total_apps is not None else len(self.reports)

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def from_enforcement_records(
        cls, records: Iterable[EnforcementRecord], total_apps: int | None = None
    ) -> "IoIAnalysis":
        """Build the analysis from the Policy Enforcer's decoded records.

        This is the BorderPatrol-eye view: only what was actually carried
        in IP options and decoded at the border is used.
        """
        reports: dict[str, AppIoIReport] = {}
        for record in records:
            if not record.signatures or not record.package_name:
                continue
            report = reports.setdefault(
                record.package_name, AppIoIReport(package_name=record.package_name)
            )
            report.destinations.setdefault(record.dst_ip, set()).add(record.signatures)
        return cls(reports, total_apps=total_apps)

    @classmethod
    def from_ground_truth(
        cls, packets: Iterable[IPPacket], total_apps: int | None = None
    ) -> "IoIAnalysis":
        """Build the analysis from packet provenance (simulation ground truth)."""
        reports: dict[str, AppIoIReport] = {}
        for packet in packets:
            package = str(packet.provenance.get("package", ""))
            chain = tuple(packet.provenance.get("call_chain", ()))
            if not package or not chain:
                continue
            report = reports.setdefault(package, AppIoIReport(package_name=package))
            # Ground-truth chains are outermost-first; reverse them so the
            # innermost frame comes first, matching decoded stacks.
            report.destinations.setdefault(packet.dst_ip, set()).add(tuple(reversed(chain)))
        return cls(reports, total_apps=total_apps)

    # -- Figure 3 ------------------------------------------------------------------------

    def apps_with_iois(self, min_distinct_stacks: int = 2) -> list[AppIoIReport]:
        return [r for r in self.reports.values() if r.ioi_count(min_distinct_stacks) > 0]

    def histogram(self, min_distinct_stacks: int = 2) -> dict[int, int]:
        """Number of apps per IoI count — the bars of Figure 3."""
        out: dict[int, int] = defaultdict(int)
        for report in self.reports.values():
            count = report.ioi_count(min_distinct_stacks)
            if count > 0:
                out[count] += 1
        return dict(sorted(out.items()))

    def total_apps_with_ioi(self, min_distinct_stacks: int = 2) -> int:
        return len(self.apps_with_iois(min_distinct_stacks))

    # -- §VI-B package-overlap statistics ----------------------------------------------------

    def same_package_fraction(self, min_distinct_stacks: int = 2) -> float:
        """Fraction of IoI apps whose IoI contexts all share one package."""
        apps = self.apps_with_iois(min_distinct_stacks)
        if not apps:
            return 0.0
        same = sum(1 for r in apps if r.is_same_package(min_distinct_stacks))
        return same / len(apps)

    def cross_package_ioi_fraction(self, min_distinct_stacks: int = 2) -> float:
        """Fraction of IoIs (not apps) whose contexts span different packages."""
        total = 0
        cross = 0
        for report in self.reports.values():
            total += report.ioi_count(min_distinct_stacks)
            cross += report.cross_package_iois(min_distinct_stacks)
        return cross / total if total else 0.0

    def summary(self) -> dict:
        return {
            "total_apps": self.total_apps,
            "apps_with_ioi": self.total_apps_with_ioi(),
            "histogram": self.histogram(),
            "same_package_app_fraction": round(self.same_package_fraction(), 3),
            "cross_package_ioi_fraction": round(self.cross_package_ioi_fraction(), 3),
        }
