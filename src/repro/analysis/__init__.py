"""Analyses over captured traffic and enforcement records.

These are the measurement tools behind the paper's evaluation section:
the IP-of-interest analysis of §VI-B (Figure 3 and the package-overlap
statistics), the library-blocking validation of §VI-B1, and the
supporting metrics used in the discussion (hash collisions, flow-size
distributions, precision/recall of enforcement decisions).
"""

from repro.analysis.ioi import AppIoIReport, IoIAnalysis
from repro.analysis.validation import ValidationScore, score_validation_run
from repro.analysis.metrics import (
    hash_collision_probability,
    monte_carlo_collision_estimate,
    precision_recall,
    flow_size_summary,
)

__all__ = [
    "AppIoIReport",
    "IoIAnalysis",
    "ValidationScore",
    "score_validation_run",
    "hash_collision_probability",
    "monte_carlo_collision_estimate",
    "precision_recall",
    "flow_size_summary",
]
