"""Java call stacks as ``getStackTrace`` exposes them.

A ``StackTraceElement`` in Java carries the declaring class, the method
name, the source file name and a line number — but *not* the parameter
types.  BorderPatrol therefore resolves the full method signature by
combining the frame's line number with the dex debug tables (paper
§V-B, Figure 2); overloaded methods collapse to a single name when
debug info has been stripped (§VII "Overloaded methods").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class StackFrame:
    """One active stack frame, mirroring ``java.lang.StackTraceElement``."""

    class_name: str
    method_name: str
    source_file: str = ""
    line_number: int = -1

    def __post_init__(self) -> None:
        if not self.class_name or not self.method_name:
            raise ValueError("stack frames need a class and method name")

    @property
    def package(self) -> str:
        return self.class_name.rsplit(".", 1)[0] if "." in self.class_name else ""

    @property
    def has_line_number(self) -> bool:
        return self.line_number > 0

    def __str__(self) -> str:
        location = self.source_file or "Unknown Source"
        if self.has_line_number:
            location = f"{location}:{self.line_number}"
        return f"{self.class_name}.{self.method_name}({location})"


@dataclass(frozen=True)
class CallStack:
    """An ordered snapshot of stack frames, innermost (top of stack) first."""

    frames: tuple[StackFrame, ...] = ()

    @classmethod
    def of(cls, frames: Iterable[StackFrame]) -> "CallStack":
        return cls(frames=tuple(frames))

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def innermost(self) -> StackFrame | None:
        return self.frames[0] if self.frames else None

    @property
    def outermost(self) -> StackFrame | None:
        return self.frames[-1] if self.frames else None

    def packages(self) -> set[str]:
        return {f.package for f in self.frames}

    def frames_in_package(self, package_prefix: str) -> list[StackFrame]:
        return [
            f
            for f in self.frames
            if f.package == package_prefix or f.package.startswith(package_prefix + ".")
        ]

    def without_framework_frames(self, framework_prefixes: tuple[str, ...] = ("java.", "javax.", "android.", "dalvik.", "com.android.")) -> "CallStack":
        """Drop JVM / Android framework frames, keeping app and library code."""
        kept = tuple(
            f
            for f in self.frames
            if not any(f.class_name.startswith(p) for p in framework_prefixes)
        )
        return CallStack(frames=kept)

    def render(self) -> str:
        """Multi-line rendering in the familiar ``at ...`` exception format."""
        return "\n".join(f"    at {frame}" for frame in self.frames)

    def __iter__(self) -> Iterator[StackFrame]:
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    def __bool__(self) -> bool:
        return bool(self.frames)
