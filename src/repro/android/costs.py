"""Latency cost model.

The paper's Figure 4 decomposes the per-request latency of the prototype
into contributions from the emulator's networking mode, the NFQUEUE
user-space hop, Xposed hooking, the ``getStackTrace`` call and the
dynamic stack encoding (§VI-D).  Because the reproduction runs on a
simulated clock, those contributions live here as explicit constants
calibrated to the deltas the paper reports (+1 ms for the Python NFQUEUE
consumer, +1.6 ms for ``getStackTrace``, < 2.5 ms total overhead over
the TAP baseline), so the *shape* of Figure 4 is reproducible while the
absolute numbers remain openly synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Simulated-time costs (milliseconds) charged by individual operations."""

    #: Base round-trip of one HTTP GET to a host-local server over the TAP interface.
    tap_request_rtt_ms: float = 0.95
    #: Extra per-request cost of QEMU's user-mode (SLIRP) networking relative to TAP.
    slirp_extra_ms: float = 0.40
    #: User-space traversal cost of one Python NFQUEUE consumer.  The standard
    #: deployment chains two queues (Policy Enforcer + Packet Sanitizer), so the
    #: full chain costs ~1 ms per request — the delta the paper attributes to
    #: its Python NFQUEUE stage.
    nfqueue_ms: float = 0.5
    #: Dispatch overhead of one Xposed post-hook invocation.
    hook_dispatch_ms: float = 0.05
    #: Cost of one ``getStackTrace`` call (paper: ~+1.6 ms).
    getstacktrace_ms: float = 1.60
    #: Cost of mapping stack frames to indexes and building the option bytes.
    encode_ms: float = 0.12
    #: Cost of the JNI ``setsockopt`` round trip.
    setsockopt_ms: float = 0.03
    #: Cost of creating and connecting a socket (shared by every configuration).
    socket_setup_ms: float = 0.10

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scale every cost; used by sensitivity/ablation benches."""
        if factor < 0:
            raise ValueError("cost scale factor cannot be negative")
        return CostModel(
            tap_request_rtt_ms=self.tap_request_rtt_ms * factor,
            slirp_extra_ms=self.slirp_extra_ms * factor,
            nfqueue_ms=self.nfqueue_ms * factor,
            hook_dispatch_ms=self.hook_dispatch_ms * factor,
            getstacktrace_ms=self.getstacktrace_ms * factor,
            encode_ms=self.encode_ms * factor,
            setsockopt_ms=self.setsockopt_ms * factor,
            socket_setup_ms=self.socket_setup_ms * factor,
        )
