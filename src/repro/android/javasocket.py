"""``java.net.Socket`` semantics.

Two Java-level behaviours matter to BorderPatrol (paper §II-B):

* *Lazy initialisation*: constructing a ``java.net.Socket`` with the
  default constructor does **not** issue a ``socket`` system call; the
  call happens when the app connects (or binds).  BorderPatrol hooks
  therefore observe connection establishment, not object construction.
* *Restricted ``setOption``*: the Java socket API whitelists which
  values reach ``setsockopt`` and excludes ``IP_OPTIONS``; that is why
  the Context Manager needs a JNI shared library to reach the raw
  system call (§V-B "Shared library").
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.netstack.sockets import Capability, IPPROTO_IP, IP_OPTIONS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.android.runtime import AppProcess


class SocketOptionError(ValueError):
    """Raised when the Java API refuses to pass an option to setsockopt."""


class StandardSocketOptions(enum.Enum):
    """Options the managed Java API is willing to forward to the kernel."""

    SO_KEEPALIVE = "SO_KEEPALIVE"
    SO_REUSEADDR = "SO_REUSEADDR"
    TCP_NODELAY = "TCP_NODELAY"
    SO_TIMEOUT = "SO_TIMEOUT"


class JavaSocket:
    """A managed-code socket owned by one app process."""

    def __init__(self, process: "AppProcess") -> None:
        self._process = process
        self._fd: int | None = None
        self._connected = False
        self._closed = False
        self._remote: tuple[str, int] | None = None
        self._java_options: dict[StandardSocketOptions, object] = {}

    # -- lifecycle -------------------------------------------------------------

    @property
    def fd(self) -> int | None:
        """Underlying OS file descriptor; None until the lazy socket call happens."""
        return self._fd

    @property
    def is_connected(self) -> bool:
        return self._connected

    @property
    def is_closed(self) -> bool:
        return self._closed

    @property
    def remote(self) -> tuple[str, int] | None:
        return self._remote

    def connect(self, host: str, port: int) -> int:
        """Connect to ``host:port``.

        Resolves the host, lazily issues the ``socket`` system call,
        connects, and finally lets the device's hooking framework run
        its post-hooks — mirroring the Xposed post-hook placement that
        guarantees the OS socket exists before IP options are written.
        """
        if self._closed:
            raise OSError("socket is closed")
        if self._connected:
            raise OSError("socket already connected")
        device = self._process.device
        dst_ip = device.resolve(host)
        kernel = device.kernel
        if self._fd is None:
            self._fd = kernel.socket(owner_pid=self._process.pid)
        kernel.connect(self._fd, dst_ip, port)
        self._remote = (host, port)
        self._connected = True
        device.clock.advance(device.cost_model.socket_setup_ms)
        device.hook_manager.dispatch_socket_connected(
            process=self._process, java_socket=self, fd=self._fd, host=host, port=port
        )
        return self._fd

    def send(self, payload_size: int) -> list:
        if not self._connected or self._fd is None:
            raise OSError("socket is not connected")
        return self._process.device.kernel.send(self._fd, payload_size)

    def close(self) -> None:
        if self._fd is not None and not self._closed:
            self._process.device.kernel.close(self._fd)
        self._closed = True
        self._connected = False

    # -- option handling ----------------------------------------------------------

    def set_option(self, option: StandardSocketOptions | str, value: object) -> None:
        """The managed ``setOption`` API: standard options only.

        Attempting to smuggle ``IP_OPTIONS`` through this API fails,
        reproducing the restriction described in §II-B2.
        """
        if isinstance(option, str):
            try:
                option = StandardSocketOptions(option)
            except ValueError as exc:
                raise SocketOptionError(
                    f"option {option!r} is not exposed by the Java socket API"
                ) from exc
        self._java_options[option] = value

    def get_option(self, option: StandardSocketOptions) -> object | None:
        return self._java_options.get(option)

    def native_setsockopt(
        self,
        level: int,
        optname: int,
        value,
        capabilities: Capability = Capability.NONE,
    ) -> None:
        """The JNI shared-library escape hatch used by the Context Manager.

        This forwards straight to the kernel's ``setsockopt``, subject to
        the kernel's own capability checks (and hence to the one-line
        kernel patch).
        """
        if self._fd is None:
            raise OSError("no underlying OS socket yet (socket is lazily created)")
        self._process.device.clock.advance(self._process.device.cost_model.setsockopt_ms)
        self._process.device.kernel.setsockopt(
            self._fd, level, optname, value, capabilities=capabilities
        )

    def set_ip_options_via_jni(self, value, capabilities: Capability = Capability.NONE) -> None:
        """Convenience wrapper for the specific call the Context Manager makes."""
        self.native_setsockopt(IPPROTO_IP, IP_OPTIONS, value, capabilities=capabilities)
