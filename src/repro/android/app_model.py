"""App behaviour model.

The paper's threat model centres on apps that mix *desirable*
functionality (login, file download, document browsing) with
*detrimental* functionality (file upload against policy, analytics and
advertisement reporting bundled via third-party libraries).  An
:class:`AppBehavior` captures exactly that: a set of named
:class:`Functionality` objects, each with a Java call chain rooted in
the app's own dex code and one or more network requests it performs.

The call chains reference real :class:`~repro.dex.signature.MethodSignature`
objects from the app's dex files, so the call stacks the runtime
produces when executing a functionality can be mapped back to
signatures by BorderPatrol's Context Manager — the same closed loop the
prototype gets from Xposed + dexlib2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.dex.signature import MethodSignature


@dataclass(frozen=True)
class NetworkRequest:
    """One network interaction performed by a functionality.

    Attributes
    ----------
    endpoint:
        DNS name of the remote service.
    port:
        Destination port (443 by default).
    upload_bytes / download_bytes:
        Outbound request size and expected response size.
    http_method:
        Informational HTTP verb for reporting.
    via_native:
        When True the request is issued through native code / a direct
        ``socket`` system call, which the Xposed-style hooking framework
        cannot observe (paper §VII "Native functions").
    keep_alive:
        When True the socket is left open so later requests of the same
        functionality reuse it (relevant to the amortisation argument in
        §VI-D and the socket-reuse limitation in §VII).
    """

    endpoint: str
    port: int = 443
    upload_bytes: int = 512
    download_bytes: int = 2048
    http_method: str = "GET"
    via_native: bool = False
    keep_alive: bool = False

    def __post_init__(self) -> None:
        if not self.endpoint:
            raise ValueError("network request needs an endpoint")
        if not 1 <= self.port <= 65535:
            raise ValueError(f"invalid port {self.port}")
        if self.upload_bytes < 0 or self.download_bytes < 0:
            raise ValueError("byte counts cannot be negative")


@dataclass(frozen=True)
class Functionality:
    """A named app behaviour: a call chain ending in network requests.

    Attributes
    ----------
    name:
        Human-readable behaviour name (``upload``, ``login_with_facebook``,
        ``analytics_report``...).
    call_chain:
        Method signatures executed on the way to the network call,
        outermost first (entry point at index 0).  All signatures must
        exist in the app's dex files.
    requests:
        The network requests this functionality performs when invoked.
    weight:
        Relative probability that a random UI event triggers this
        functionality (consumed by the monkey exerciser).
    desirable:
        Ground-truth business label used only for scoring experiments.
    library:
        Owning third-party library package when the functionality comes
        from a bundled SDK rather than developer-authored code.
    """

    name: str
    call_chain: tuple[MethodSignature, ...]
    requests: tuple[NetworkRequest, ...]
    weight: float = 1.0
    desirable: bool = True
    library: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("functionality needs a name")
        if not self.call_chain:
            raise ValueError(f"functionality {self.name!r} needs a call chain")
        if not self.requests:
            raise ValueError(f"functionality {self.name!r} needs at least one request")
        if self.weight < 0:
            raise ValueError("weight cannot be negative")

    @property
    def entry_point(self) -> MethodSignature:
        return self.call_chain[0]

    @property
    def leaf(self) -> MethodSignature:
        return self.call_chain[-1]

    @property
    def is_library_functionality(self) -> bool:
        return self.library is not None

    def endpoints(self) -> set[str]:
        return {r.endpoint for r in self.requests}

    def total_upload_bytes(self) -> int:
        return sum(r.upload_bytes for r in self.requests)


@dataclass(frozen=True)
class AppBehavior:
    """The complete behaviour graph of one app."""

    package_name: str
    functionalities: tuple[Functionality, ...]
    idle_weight: float = 4.0

    def __post_init__(self) -> None:
        if not self.functionalities:
            raise ValueError("an app behaviour needs at least one functionality")
        names = [f.name for f in self.functionalities]
        if len(names) != len(set(names)):
            raise ValueError("functionality names must be unique within an app")
        if self.idle_weight < 0:
            raise ValueError("idle weight cannot be negative")

    def get(self, name: str) -> Functionality:
        for functionality in self.functionalities:
            if functionality.name == name:
                return functionality
        raise KeyError(f"{self.package_name} has no functionality {name!r}")

    def names(self) -> list[str]:
        return [f.name for f in self.functionalities]

    def endpoints(self) -> set[str]:
        out: set[str] = set()
        for functionality in self.functionalities:
            out |= functionality.endpoints()
        return out

    def library_functionalities(self) -> list[Functionality]:
        return [f for f in self.functionalities if f.is_library_functionality]

    def undesirable_functionalities(self) -> list[Functionality]:
        return [f for f in self.functionalities if not f.desirable]

    def __iter__(self) -> Iterator[Functionality]:
        return iter(self.functionalities)

    def __len__(self) -> int:
        return len(self.functionalities)


@dataclass
class FunctionalityOutcome:
    """Result of invoking a functionality once on a device.

    Experiments use outcomes to decide whether an app behaviour
    "worked": a functionality *completes* when every request it issued
    was delivered to its destination (responses received), and is
    *blocked* when at least one request's packets were dropped by an
    enforcement component.
    """

    functionality: Functionality
    requests_attempted: int = 0
    requests_completed: int = 0
    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    bytes_uploaded: int = 0
    bytes_downloaded: int = 0
    latency_ms: float = 0.0
    hooked_sockets: int = 0

    @property
    def completed(self) -> bool:
        return self.requests_attempted > 0 and self.requests_completed == self.requests_attempted

    @property
    def blocked(self) -> bool:
        return self.packets_dropped > 0

    def merge(self, other: "FunctionalityOutcome") -> "FunctionalityOutcome":
        if other.functionality.name != self.functionality.name:
            raise ValueError("cannot merge outcomes of different functionalities")
        return FunctionalityOutcome(
            functionality=self.functionality,
            requests_attempted=self.requests_attempted + other.requests_attempted,
            requests_completed=self.requests_completed + other.requests_completed,
            packets_sent=self.packets_sent + other.packets_sent,
            packets_delivered=self.packets_delivered + other.packets_delivered,
            packets_dropped=self.packets_dropped + other.packets_dropped,
            bytes_uploaded=self.bytes_uploaded + other.bytes_uploaded,
            bytes_downloaded=self.bytes_downloaded + other.bytes_downloaded,
            latency_ms=self.latency_ms + other.latency_ms,
            hooked_sockets=self.hooked_sockets + other.hooked_sockets,
        )
