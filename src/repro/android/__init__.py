"""Simulated Android runtime.

This package stands in for the Android 7.1.1 emulator of the paper's
prototype: apps are installed from apk files, forked from a Zygote-like
process model, and executed by triggering *functionalities* — named
behaviours whose Java call chains terminate in network requests.  The
pieces BorderPatrol interacts with are modelled faithfully:

* :mod:`repro.android.callstack` — Java stack frames exactly as
  ``Throwable.getStackTrace`` reports them (class, method, file, line —
  but *not* parameter types, which is why debug line numbers are needed
  to disambiguate overloads).
* :mod:`repro.android.app_model` — the behaviour graph of an app: its
  functionalities, their call chains and the network requests they make.
* :mod:`repro.android.javasocket` — ``java.net.Socket`` semantics
  including lazy creation of the OS socket and the restricted
  ``setOption`` API (paper §II-B1/B2).
* :mod:`repro.android.hooks` — an Xposed-style hooking framework with
  post-hooks on socket creation and the "cannot hook native code"
  limitation.
* :mod:`repro.android.runtime` — Zygote, app processes and stack-trace
  capture.
* :mod:`repro.android.monkey` — the adb-monkey-style random UI
  exerciser used by the §VI evaluation.
* :mod:`repro.android.device` — a provisioned BYOD device combining the
  kernel, runtime, hooks and a network interface.
"""

from repro.android.callstack import StackFrame, CallStack
from repro.android.costs import CostModel
from repro.android.app_model import (
    NetworkRequest,
    Functionality,
    AppBehavior,
    FunctionalityOutcome,
)
from repro.android.javasocket import JavaSocket, SocketOptionError
from repro.android.hooks import HookManager, HookContext, HookError
from repro.android.runtime import Zygote, AppProcess, AndroidRuntimeError
from repro.android.monkey import MonkeyExerciser, MonkeyReport
from repro.android.device import Device, NetworkMode, InstalledApp, DeviceError

__all__ = [
    "StackFrame",
    "CallStack",
    "CostModel",
    "NetworkRequest",
    "Functionality",
    "AppBehavior",
    "FunctionalityOutcome",
    "JavaSocket",
    "SocketOptionError",
    "HookManager",
    "HookContext",
    "HookError",
    "Zygote",
    "AppProcess",
    "AndroidRuntimeError",
    "MonkeyExerciser",
    "MonkeyReport",
    "Device",
    "NetworkMode",
    "InstalledApp",
    "DeviceError",
]
