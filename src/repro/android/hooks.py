"""Xposed-style hooking framework.

The prototype's Context Manager is an Xposed module: it registers
post-hooks on socket calls so that, once a connection is established,
control transfers to the module which can inspect the call stack and
set IP options (paper §V-B "Hooks").  The framework here reproduces the
properties that matter:

* hooks are *post*-hooks — they run after the hooked operation
  completed, so the OS socket already exists;
* hooks only cover managed (Dalvik/Java) code — requests issued through
  native code or raw system calls bypass them (§VII "Native functions");
* each dispatch costs a small, fixed amount of simulated time, feeding
  the Figure 4 latency decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.android.javasocket import JavaSocket
    from repro.android.runtime import AppProcess


class HookError(RuntimeError):
    """Raised for invalid hook registrations."""


#: The hook point the Context Manager uses.
SOCKET_CONNECTED = "java.net.Socket#connect"


@dataclass
class HookContext:
    """Information handed to a post-hook after a socket connected.

    ``java_socket`` is None when the connection was made from native code
    and the hooking framework supports native hooks (the Frida-style
    extension discussed in §VII); hook implementations must then operate
    on the raw file descriptor instead.
    """

    process: "AppProcess"
    java_socket: "JavaSocket | None"
    fd: int
    host: str
    port: int


@dataclass
class _Hook:
    name: str
    target: str
    callback: Callable[[HookContext], None]
    invocations: int = 0
    errors: int = 0


@dataclass
class HookManager:
    """Registry and dispatcher for post-hooks on one device.

    ``enabled`` is False on an un-provisioned device (no Xposed
    framework installed); dispatching is then a no-op, which is exactly
    the baseline configuration (i)/(ii)/(iii) of the Figure 4 study.
    """

    enabled: bool = True
    supports_native_hooks: bool = False
    dispatch_cost_ms: float = 0.05
    clock_advance: Callable[[float], float] | None = None
    _hooks: dict[str, list[_Hook]] = field(default_factory=dict)

    # -- registration -----------------------------------------------------------

    def register_post_hook(
        self, target: str, callback: Callable[[HookContext], None], name: str = ""
    ) -> str:
        """Register ``callback`` as a post-hook on ``target``; returns the hook name."""
        if not self.enabled:
            raise HookError("hooking framework is not installed on this device")
        hook_name = name or f"{target}#{len(self._hooks.get(target, [])) + 1}"
        existing = self._hooks.setdefault(target, [])
        if any(h.name == hook_name for h in existing):
            raise HookError(f"hook {hook_name!r} already registered on {target}")
        existing.append(_Hook(name=hook_name, target=target, callback=callback))
        return hook_name

    def unregister(self, target: str, name: str) -> bool:
        hooks = self._hooks.get(target, [])
        for hook in hooks:
            if hook.name == name:
                hooks.remove(hook)
                return True
        return False

    def hooks_on(self, target: str) -> list[str]:
        return [h.name for h in self._hooks.get(target, [])]

    # -- dispatch -----------------------------------------------------------------

    def dispatch(self, target: str, context: HookContext) -> int:
        """Invoke every post-hook on ``target``; returns the number invoked."""
        if not self.enabled:
            return 0
        hooks = self._hooks.get(target, [])
        invoked = 0
        for hook in list(hooks):
            if self.clock_advance is not None and self.dispatch_cost_ms > 0:
                self.clock_advance(self.dispatch_cost_ms)
            try:
                hook.callback(context)
            except Exception:
                # A crashing hook must not take the hooked app down with it;
                # Xposed logs and continues, and so do we.
                hook.errors += 1
            else:
                hook.invocations += 1
            invoked += 1
        return invoked

    def dispatch_socket_connected(
        self,
        process: "AppProcess",
        java_socket: "JavaSocket | None",
        fd: int,
        host: str,
        port: int,
    ) -> int:
        """Dispatch the post-hook that fires after a managed socket connects."""
        context = HookContext(
            process=process, java_socket=java_socket, fd=fd, host=host, port=port
        )
        return self.dispatch(SOCKET_CONNECTED, context)

    # -- stats -----------------------------------------------------------------------

    def invocation_count(self, target: str | None = None) -> int:
        targets = [target] if target else list(self._hooks)
        return sum(h.invocations for t in targets for h in self._hooks.get(t, []))

    def error_count(self) -> int:
        return sum(h.errors for hooks in self._hooks.values() for h in hooks)
