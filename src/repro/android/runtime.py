"""App processes and the Zygote process model.

Android apps fork from a parent Zygote process and run in their own
sandbox (paper §VII "Android image").  An :class:`AppProcess` executes
the app's behaviour graph: invoking a functionality pushes its Java call
chain onto the process call stack, opens a socket (through the managed
``java.net.Socket`` path or through native code), transmits the
request's bytes through the device, and records the outcome.

The call stacks produced here are what BorderPatrol's Context Manager
captures via ``getStackTrace``: framework frames at both ends, the app
and library frames from the dex in the middle, each carrying the source
file and line number recorded in the dex debug tables.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.android.app_model import AppBehavior, Functionality, FunctionalityOutcome, NetworkRequest
from repro.android.callstack import CallStack, StackFrame
from repro.android.javasocket import JavaSocket
from repro.dex.signature import MethodSignature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.android.device import Device, InstalledApp


class AndroidRuntimeError(RuntimeError):
    """Raised for invalid runtime operations (bad launch, missing methods...)."""


#: Frames the Android framework contributes above the app's entry point.
_ENTRY_FRAMES = (
    StackFrame("com.android.internal.os.ZygoteInit", "main", "ZygoteInit.java", 801),
    StackFrame("android.os.Looper", "loop", "Looper.java", 154),
    StackFrame("android.os.Handler", "dispatchMessage", "Handler.java", 102),
    StackFrame("android.app.Activity", "performClick", "Activity.java", 6294),
)

#: Frames the Java networking stack contributes below the app's leaf method.
_SOCKET_FRAMES = (
    StackFrame("java.net.Socket", "connect", "Socket.java", 586),
    StackFrame("java.net.PlainSocketImpl", "socketConnect", "PlainSocketImpl.java", 334),
)


class AppProcess:
    """A running instance of an installed app."""

    def __init__(self, pid: int, installed_app: "InstalledApp", device: "Device") -> None:
        self.pid = pid
        self.installed_app = installed_app
        self.device = device
        self.behavior: AppBehavior = installed_app.behavior
        self._frame_stack: list[StackFrame] = []
        self._keepalive_sockets: dict[tuple[str, int], JavaSocket] = {}
        self._line_table = self._build_line_table()
        self.invocation_log: list[FunctionalityOutcome] = []

    # -- identity --------------------------------------------------------------

    @property
    def package_name(self) -> str:
        return self.behavior.package_name

    @property
    def apk(self):
        return self.installed_app.apk

    # -- dex-derived metadata -----------------------------------------------------

    def _build_line_table(self) -> dict[MethodSignature, tuple[str, int]]:
        """Map each dex method signature to a representative (file, line)."""
        table: dict[MethodSignature, tuple[str, int]] = {}
        merged = self.installed_app.apk.merged_dex()
        for method in merged.iter_methods():
            debug = method.debug
            if debug.stripped:
                table[method.signature] = (debug.source_file or "Unknown", -1)
            else:
                # Use a line strictly inside the method's range so the
                # reverse lookup (line -> method) is unambiguous.
                line = min(debug.line_start + 1, debug.line_end)
                table[method.signature] = (debug.source_file, line)
        return table

    # -- call stack management ------------------------------------------------------

    def _frame_for(self, signature: MethodSignature) -> StackFrame:
        source_file, line = self._line_table.get(signature, ("Unknown", -1))
        return StackFrame(
            class_name=signature.class_name,
            method_name=signature.method_name,
            source_file=source_file,
            line_number=line,
        )

    @contextmanager
    def _executing(self, functionality: Functionality) -> Iterator[None]:
        """Push the frames active while ``functionality`` runs, outermost first."""
        frames = list(_ENTRY_FRAMES) + [self._frame_for(s) for s in functionality.call_chain]
        self._frame_stack.extend(frames)
        try:
            yield
        finally:
            del self._frame_stack[-len(frames):]

    @contextmanager
    def _in_socket_call(self) -> Iterator[None]:
        self._frame_stack.extend(_SOCKET_FRAMES)
        try:
            yield
        finally:
            del self._frame_stack[-len(_SOCKET_FRAMES):]

    def current_stack(self) -> CallStack:
        """Raw snapshot of the current call stack (no cost charged)."""
        return CallStack(frames=tuple(reversed(self._frame_stack)))

    def get_stack_trace(self, charge_cost: bool = True) -> CallStack:
        """``Thread.getStackTrace`` as the Context Manager calls it.

        Charges the simulated cost of the Java API call unless told not
        to (baseline configurations of the Figure 4 study skip it).
        """
        if charge_cost:
            self.device.clock.advance(self.device.cost_model.getstacktrace_ms)
        return self.current_stack()

    # -- functionality execution ------------------------------------------------------

    def invoke(self, functionality_name: str | Functionality) -> FunctionalityOutcome:
        """Execute one functionality end to end and report what happened."""
        functionality = (
            functionality_name
            if isinstance(functionality_name, Functionality)
            else self.behavior.get(functionality_name)
        )
        outcome = FunctionalityOutcome(functionality=functionality)
        stopwatch = self.device.clock.measure()
        with self._executing(functionality):
            for request in functionality.requests:
                self._perform_request(functionality, request, outcome)
        outcome.latency_ms = stopwatch.elapsed_ms()
        self.invocation_log.append(outcome)
        return outcome

    def _perform_request(
        self,
        functionality: Functionality,
        request: NetworkRequest,
        outcome: FunctionalityOutcome,
    ) -> None:
        outcome.requests_attempted += 1
        if request.via_native:
            fd = self._connect_native(request)
        else:
            fd = self._connect_managed(functionality, request, outcome)
        self._stamp_provenance(fd, functionality, request)
        packets = self.device.kernel.send(fd, request.upload_bytes)
        outcome.packets_sent += len(packets)
        outcome.bytes_uploaded += request.upload_bytes
        report = self.device.transmit(packets)
        outcome.packets_delivered += len(report.delivered)
        outcome.packets_dropped += len(report.dropped)
        if not report.dropped:
            outcome.requests_completed += 1
            self.device.kernel.receive(fd, request.download_bytes)
            outcome.bytes_downloaded += request.download_bytes
        if not request.keep_alive:
            self._close_socket(request, fd)

    def _connect_managed(
        self,
        functionality: Functionality,
        request: NetworkRequest,
        outcome: FunctionalityOutcome,
    ) -> int:
        key = (request.endpoint, request.port)
        cached = self._keepalive_sockets.get(key)
        if request.keep_alive and cached is not None and cached.is_connected:
            # Socket reuse: the existing tag stays on the socket (paper §VII).
            return cached.fd  # type: ignore[return-value]
        java_socket = JavaSocket(self)
        with self._in_socket_call():
            fd = java_socket.connect(request.endpoint, request.port)
        outcome.hooked_sockets += 1
        if request.keep_alive:
            self._keepalive_sockets[key] = java_socket
        else:
            self._keepalive_sockets.pop(key, None)
        self._last_socket = java_socket
        return fd

    def _connect_native(self, request: NetworkRequest) -> int:
        """Issue the connection through native code.

        Managed (Xposed-style) hooks cannot observe this path; only a
        hooking framework with native support (the Frida-style extension
        from §VII) gets a post-hook dispatch, and then without a
        ``JavaSocket`` — the hook must work on the raw file descriptor.
        """
        dst_ip = self.device.resolve(request.endpoint)
        kernel = self.device.kernel
        fd = kernel.socket(owner_pid=self.pid)
        kernel.connect(fd, dst_ip, request.port)
        self.device.clock.advance(self.device.cost_model.socket_setup_ms)
        hook_manager = self.device.hook_manager
        if hook_manager.enabled and hook_manager.supports_native_hooks:
            hook_manager.dispatch_socket_connected(
                process=self, java_socket=None, fd=fd, host=request.endpoint, port=request.port
            )
        return fd

    def _close_socket(self, request: NetworkRequest, fd: int) -> None:
        try:
            self.device.kernel.close(fd)
        except OSError:
            pass
        self._keepalive_sockets.pop((request.endpoint, request.port), None)

    def _stamp_provenance(
        self, fd: int, functionality: Functionality, request: NetworkRequest
    ) -> None:
        """Attach ground-truth metadata to the kernel socket (experiments only)."""
        sock = self.device.kernel.get_socket(fd)
        if sock.provenance:
            # Reused socket: keep the original context to mirror the
            # socket-reuse limitation; record the new functionality too.
            sock.provenance.setdefault("reused_by", []).append(functionality.name)
            return
        sock.provenance.update(
            {
                "package": self.package_name,
                "app_md5": self.apk.md5,
                "app_id": self.apk.app_id,
                "functionality": functionality.name,
                "library": functionality.library,
                "desirable": functionality.desirable,
                "via_native": request.via_native,
                "endpoint": request.endpoint,
                "call_chain": tuple(str(s) for s in functionality.call_chain),
            }
        )

    # -- bookkeeping --------------------------------------------------------------

    def outcomes_by_functionality(self) -> dict[str, FunctionalityOutcome]:
        merged: dict[str, FunctionalityOutcome] = {}
        for outcome in self.invocation_log:
            name = outcome.functionality.name
            if name in merged:
                merged[name] = merged[name].merge(outcome)
            else:
                merged[name] = outcome
        return merged


class Zygote:
    """The parent process every app forks from."""

    def __init__(self, device: "Device") -> None:
        self._device = device
        self._next_pid = 1000
        self.forked: list[AppProcess] = []

    def fork(self, installed_app: "InstalledApp") -> AppProcess:
        pid = self._next_pid
        self._next_pid += 1
        process = AppProcess(pid=pid, installed_app=installed_app, device=self._device)
        self.forked.append(process)
        return process
