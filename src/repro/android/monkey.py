"""adb-monkey-style UI exerciser.

The evaluation (§VI-B) drives each of the 2,000 apps with 5,000 random
UI events from ``adb monkey`` while recording all generated network
traffic.  Our exerciser plays the same role against the behaviour
graph: each event either lands on UI that triggers one of the app's
functionalities (weighted by the functionality's ``weight``) or is an
inert interaction.  The generator is seeded so corpus-scale experiments
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.android.app_model import Functionality, FunctionalityOutcome
from repro.android.runtime import AppProcess


@dataclass
class MonkeyReport:
    """Aggregate result of one monkey session against one app."""

    package_name: str
    events_sent: int = 0
    functionality_triggers: dict[str, int] = field(default_factory=dict)
    outcomes: dict[str, FunctionalityOutcome] = field(default_factory=dict)

    @property
    def network_events(self) -> int:
        return sum(self.functionality_triggers.values())

    @property
    def idle_events(self) -> int:
        return self.events_sent - self.network_events

    def total_packets_sent(self) -> int:
        return sum(o.packets_sent for o in self.outcomes.values())

    def total_packets_dropped(self) -> int:
        return sum(o.packets_dropped for o in self.outcomes.values())

    def triggered_functionalities(self) -> list[str]:
        return sorted(self.functionality_triggers)


class MonkeyExerciser:
    """Seeded random event generator."""

    def __init__(self, seed: int = 0, max_triggers_per_functionality: int | None = None) -> None:
        self.seed = seed
        #: Optional cap on how many times the same functionality is actually
        #: executed; corpus-scale runs use this to bound simulation work while
        #: still exploring every reachable behaviour.
        self.max_triggers_per_functionality = max_triggers_per_functionality

    def run(self, process: AppProcess, n_events: int = 5000) -> MonkeyReport:
        """Send ``n_events`` random events to ``process``."""
        if n_events < 0:
            raise ValueError("event count cannot be negative")
        behavior = process.behavior
        # Derive a per-app stream so results do not depend on corpus ordering.
        rng = random.Random(f"{self.seed}:{behavior.package_name}")
        functionalities: list[Functionality | None] = list(behavior.functionalities)
        weights = [f.weight for f in behavior.functionalities]
        functionalities.append(None)
        weights.append(behavior.idle_weight)

        report = MonkeyReport(package_name=behavior.package_name)
        for _ in range(n_events):
            report.events_sent += 1
            choice = rng.choices(functionalities, weights=weights, k=1)[0]
            if choice is None:
                continue
            count = report.functionality_triggers.get(choice.name, 0)
            report.functionality_triggers[choice.name] = count + 1
            cap = self.max_triggers_per_functionality
            if cap is not None and count >= cap:
                continue
            outcome = process.invoke(choice)
            if choice.name in report.outcomes:
                report.outcomes[choice.name] = report.outcomes[choice.name].merge(outcome)
            else:
                report.outcomes[choice.name] = outcome
        return report
