"""A BYOD smart device.

A :class:`Device` glues the pieces of one provisioned phone/emulator
together: the per-device kernel (with or without the BorderPatrol
kernel patch), the Xposed-style hook manager (present only on
provisioned system images), the cost model, the networking mode (QEMU
user-mode SLIRP vs TAP, which differ in per-request latency — Figure 4
configurations (i) and (ii)), and the attachment to an enterprise
network.  Apps are installed from apk files and launched as processes
forked from the device's Zygote.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.android.costs import CostModel
from repro.android.hooks import HookManager
from repro.android.runtime import AndroidRuntimeError, AppProcess, Zygote
from repro.apk.package import ApkFile
from repro.android.app_model import AppBehavior
from repro.netstack.clock import SimulatedClock
from repro.netstack.dns import DnsRegistry
from repro.netstack.ip import IPPacket
from repro.netstack.sockets import Kernel, KernelConfig
from repro.network.capture import DeliveryReport
from repro.network.topology import EnterpriseNetwork


class DeviceError(RuntimeError):
    """Raised for invalid device operations (duplicate installs, bad launches...)."""


class NetworkMode(str, enum.Enum):
    """Emulator networking backend (paper §VI-D configurations i and ii)."""

    SLIRP = "slirp"
    TAP = "tap"


@dataclass(frozen=True)
class InstalledApp:
    """An app present on the device: its package plus its behaviour graph."""

    apk: ApkFile
    behavior: AppBehavior

    def __post_init__(self) -> None:
        if self.apk.package_name != self.behavior.package_name:
            raise ValueError(
                "apk and behaviour describe different packages: "
                f"{self.apk.package_name} vs {self.behavior.package_name}"
            )

    @property
    def package_name(self) -> str:
        return self.apk.package_name


class Device:
    """One employee-owned device enrolled in the BYOD programme."""

    def __init__(
        self,
        name: str = "device-0",
        network: EnterpriseNetwork | None = None,
        ip: str | None = None,
        kernel_config: KernelConfig | None = None,
        cost_model: CostModel | None = None,
        network_mode: NetworkMode = NetworkMode.TAP,
        xposed_installed: bool = True,
        native_hooking: bool = False,
        clock: SimulatedClock | None = None,
    ) -> None:
        self.name = name
        self.network = network
        if network is not None:
            self.clock = network.clock
            self.ip = ip or network.allocate_device_ip()
        else:
            self.clock = clock or SimulatedClock()
            self.ip = ip or "10.10.0.2"
        self.cost_model = cost_model or CostModel()
        self.network_mode = network_mode
        self.kernel = Kernel(
            host_ip=self.ip, clock=self.clock, config=kernel_config or KernelConfig()
        )
        self.hook_manager = HookManager(
            enabled=xposed_installed,
            supports_native_hooks=native_hooking,
            dispatch_cost_ms=self.cost_model.hook_dispatch_ms,
            clock_advance=self.clock.advance,
        )
        self._local_dns = DnsRegistry()
        self._installed: dict[str, InstalledApp] = {}
        self.zygote = Zygote(self)
        self.transmissions = 0

    # -- name resolution ------------------------------------------------------------

    def resolve(self, host: str) -> str:
        """Resolve ``host`` through the enterprise DNS, or a local stub registry."""
        if self.network is not None and self.network.dns.knows_name(host):
            return self.network.dns.resolve(host)
        return self._local_dns.register(host)

    # -- app lifecycle ----------------------------------------------------------------

    def install(self, apk: ApkFile, behavior: AppBehavior) -> InstalledApp:
        app = InstalledApp(apk=apk, behavior=behavior)
        if app.package_name in self._installed:
            raise DeviceError(f"{app.package_name} is already installed on {self.name}")
        self._installed[app.package_name] = app
        return app

    def uninstall(self, package_name: str) -> None:
        if package_name not in self._installed:
            raise DeviceError(f"{package_name} is not installed on {self.name}")
        del self._installed[package_name]

    def installed_apps(self) -> list[InstalledApp]:
        return list(self._installed.values())

    def get_installed(self, package_name: str) -> InstalledApp:
        try:
            return self._installed[package_name]
        except KeyError as exc:
            raise DeviceError(f"{package_name} is not installed on {self.name}") from exc

    def launch(self, package_name: str) -> AppProcess:
        """Fork the app from Zygote and return its running process."""
        app = self.get_installed(package_name)
        if not app.apk.manifest.can_use_network:
            raise AndroidRuntimeError(
                f"{package_name} lacks the INTERNET permission; nothing to mediate"
            )
        return self.zygote.fork(app)

    # -- networking ----------------------------------------------------------------------

    def transmit(self, packets: list[IPPacket]) -> DeliveryReport:
        """Push packets off the device and charge the resulting latency."""
        self.transmissions += 1
        base_latency = self.cost_model.tap_request_rtt_ms
        if self.network_mode is NetworkMode.SLIRP:
            base_latency += self.cost_model.slirp_extra_ms
        if self.network is None:
            report = DeliveryReport(delivered=list(packets), latency_ms=0.0)
        else:
            report = self.network.transmit(packets)
        self.clock.advance(base_latency + report.latency_ms)
        return report
