"""Snapshot exporters: Prometheus text format and JSONL.

Both exporters work from the deterministic
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict (families
sorted by name, series by label values), so two registries that merged
the same worker deltas — in any order — export byte-identical text.
:func:`merge_snapshots` is the offline counterpart of the parent pool's
live fold: it reduces a collection of worker-local snapshots into one.
"""

from __future__ import annotations

import json
from dataclasses import fields as _dataclass_fields

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "to_prometheus",
    "to_jsonl",
    "merge_snapshots",
    "record_enforcer_stats",
    "record_pool_health",
]

_NS = 1_000_000_000


def _snapshot_of(registry_or_snapshot) -> dict:
    snapshot = getattr(registry_or_snapshot, "snapshot", None)
    return snapshot() if callable(snapshot) else registry_or_snapshot


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(names, values, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(name, value) for name, value in zip(names, values)]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(str(value))}"' for name, value in pairs)
    return "{" + body + "}"


def to_prometheus(registry_or_snapshot) -> str:
    """Render a registry/snapshot in the Prometheus text exposition
    format (histograms as cumulative ``_bucket``/``_sum``/``_count``)."""
    snapshot = _snapshot_of(registry_or_snapshot)
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family["type"]
        names = family["label_names"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            values = series["labels"]
            if kind == "histogram":
                buckets = family["buckets"]
                cumulative = 0
                for index, count in enumerate(series["counts"]):
                    cumulative += count
                    bound = (
                        repr(buckets[index]) if index < len(buckets) else "+Inf"
                    )
                    labels = _labels_text(names, values, (("le", bound),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _labels_text(names, values)
                lines.append(f"{name}_sum{labels} {series['sum_ns'] / _NS}")
                lines.append(f"{name}_count{labels} {series['count']}")
            else:
                labels = _labels_text(names, values)
                lines.append(f"{name}{labels} {series['value']}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_jsonl(registry_or_snapshot) -> str:
    """One JSON object per metric family per line, sorted by name —
    the replayable snapshot format (``merge_snapshots`` accepts the
    parsed lines)."""
    snapshot = _snapshot_of(registry_or_snapshot)
    lines = [
        json.dumps({"name": name, **snapshot[name]}, sort_keys=True)
        for name in sorted(snapshot)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def merge_snapshots(snapshots) -> dict:
    """Reduce worker-local snapshots into one snapshot dict.  The merge
    is order-independent (see :mod:`repro.obs.metrics`)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


def record_enforcer_stats(registry, stats, source: str = "gateway", flow_cache_len=None):
    """Project cumulative :class:`EnforcerStats` counters into gauges.

    Stats totals are point-in-time readings, not deltas, so they map to
    gauges (merge = max = most recent total), one per integer field,
    labeled by the reporting source.  ``flow_cache_len`` additionally
    feeds the ``flow_cache_entries`` gauge.
    """
    for field in _dataclass_fields(stats):
        value = getattr(stats, field.name)
        if not isinstance(value, int):
            continue  # cache_churn_by_app: a dict, exported elsewhere
        registry.gauge(
            f"enforcer_{field.name}",
            f"EnforcerStats.{field.name} running total",
            labels=("source",),
        ).set(value, source=source)
    if flow_cache_len is not None:
        registry.gauge(
            "flow_cache_entries",
            "Live flow-cache entries",
            labels=("source",),
        ).set(flow_cache_len, source=source)


def record_pool_health(registry, health) -> None:
    """Project a :class:`~repro.obs.health.PoolHealthSnapshot` into
    gauges so exports carry the pool's structural state."""
    pool = health.name
    registry.gauge(
        "pool_outstanding_bursts", "Bursts submitted but not collected", labels=("pool",)
    ).set(health.outstanding_bursts, pool=pool)
    depth = registry.gauge(
        "pool_queue_depth", "Unharvested batches per worker", labels=("pool", "worker")
    )
    incarnation = registry.gauge(
        "pool_worker_incarnation",
        "Fork count per worker slot (1 = never respawned)",
        labels=("pool", "worker"),
    )
    for index, value in enumerate(health.queue_depths):
        depth.set(value, pool=pool, worker=str(index))
    for index, value in enumerate(health.incarnations):
        incarnation.set(value, pool=pool, worker=str(index))
