"""Instrumentation glue between the registry and the runtime hot paths.

Two cost tiers, chosen so today's throughput survives:

* **Detached** (the default): ``PolicyEnforcer._obs is None`` — one
  attribute load and an ``is None`` branch per packet, nothing else.
* **Attached**: per-packet work is a counter tick; every
  ``sample_every``-th packet additionally collects perf_counter stage
  marks through ``_decide`` and feeds the ``enforcer_stage_seconds``
  histogram.  Attaching with :data:`~repro.obs.metrics.NULL_REGISTRY`
  keeps the full instrumented code path while every observation is a
  no-op — that is the "null registry" overhead the obs bench bounds.

:class:`RuntimeObservability` is the parent-side bundle a
``ShardedEnforcer`` or ``GatewayFleet`` attaches: it owns the registry,
the bounded trace log, the pool stage/batch histograms, and the
:class:`ObsConfig` that rides the pool seed specs into forked workers
(so a respawned worker comes back instrumented).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.trace import BatchTrace, TraceLog

__all__ = [
    "ENFORCER_STAGES",
    "DEFAULT_SAMPLE_EVERY",
    "ObsConfig",
    "EnforcerObservability",
    "RuntimeObservability",
]

#: Stage marks ``PolicyEnforcer._decide`` can emit, in pipeline order.
ENFORCER_STAGES: tuple[str, ...] = (
    "extract",
    "cache_lookup",
    "decode",
    "eval",
    "cache_put",
)

DEFAULT_SAMPLE_EVERY = 32


@dataclass(frozen=True)
class ObsConfig:
    """Picklable recipe for a worker-side observability setup; rides the
    pool seed specs so every (re)spawned worker self-instruments."""

    sample_every: int = DEFAULT_SAMPLE_EVERY
    null: bool = False

    def build_registry(self):
        return NULL_REGISTRY if self.null else MetricsRegistry()


class EnforcerObservability:
    """Sampled per-stage latency for one or more enforcers.

    One instance may be shared by every enforcement unit in a process
    (the tick counter then samples across the combined packet stream).
    """

    __slots__ = ("registry", "sample_every", "tick", "_stage")

    def __init__(self, registry, sample_every: int = DEFAULT_SAMPLE_EVERY) -> None:
        self.registry = registry
        self.sample_every = max(1, sample_every)
        self.tick = 0
        hist = registry.histogram(
            "enforcer_stage_seconds",
            "Sampled per-stage enforcement latency",
            labels=("stage",),
        )
        self._stage = {stage: hist.labels(stage=stage) for stage in ENFORCER_STAGES}

    def record(self, started: float, marks: list[tuple[str, float]]) -> None:
        """Fold one sampled packet's stage marks into the histogram.
        ``marks`` holds ``(stage, completed_at)`` stamps in path order;
        early-exit paths (untagged, cache hit) simply emit fewer."""
        previous = started
        stages = self._stage
        for stage, stamp in marks:
            stages[stage].observe(stamp - previous)
            previous = stamp


class _PoolCounters:
    """Bound per-pool counter children a :class:`WorkerPool` increments
    alongside its ``EnforcerStats`` fields."""

    __slots__ = ("ring", "pickled", "crashes", "respawns", "replays", "batches")

    def __init__(self, registry, pool: str) -> None:
        def bound(name: str, help: str):
            return registry.counter(name, help, labels=("pool",)).labels(pool=pool)

        self.ring = bound("pool_ring_batches_total", "Batches shipped via the shared ring")
        self.pickled = bound(
            "pool_pickled_batches_total", "Batches that fell back to pickle transport"
        )
        self.crashes = bound("pool_worker_crashes_total", "Worker deaths detected")
        self.respawns = bound("pool_worker_respawns_total", "Workers re-forked")
        self.replays = bound(
            "pool_batches_replayed_total", "Batches replayed after a crash"
        )
        self.batches = bound("pool_batches_total", "Batches harvested")


class RuntimeObservability:
    """Parent-side observability bundle for pools and their enforcers."""

    def __init__(
        self,
        registry=None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        trace_capacity: int = 256,
    ) -> None:
        self.registry = MetricsRegistry() if registry is None else registry
        self.sample_every = max(1, sample_every)
        #: False with the null registry: pools then skip span capture
        #: entirely while call sites still exercise the no-op registry.
        self.enabled = bool(self.registry.enabled)
        self.traces = TraceLog(trace_capacity)
        self.enforcer = EnforcerObservability(self.registry, self.sample_every)
        self.stage_seconds = self.registry.histogram(
            "pool_stage_seconds",
            "Per-stage pool pipeline latency (serialize/ring_write/queue_wait/enforce/fold)",
            labels=("pool", "stage"),
        )
        self.batch_seconds = self.registry.histogram(
            "pool_worker_batch_seconds",
            "Worker-measured enforce time per batch",
            labels=("pool", "worker"),
        )
        self.ipc_seconds = self.registry.histogram(
            "pool_batch_ipc_seconds",
            "Per-batch overhead outside worker compute (pipes, ring, queueing)",
            labels=("pool",),
        )

    def worker_config(self) -> ObsConfig:
        return ObsConfig(sample_every=self.sample_every, null=not self.enabled)

    def bind_pool(self, pool: str) -> _PoolCounters:
        return _PoolCounters(self.registry, pool)

    def merge_worker(self, snapshot: dict) -> None:
        """Fold a worker registry delta piped back with a batch result."""
        if snapshot:
            self.registry.merge_snapshot(snapshot)

    def observe_batch(self, pool: str, worker: int, trace: BatchTrace) -> None:
        """Record one completed batch trace: retain it and feed the
        stage/batch/IPC histograms."""
        self.traces.append(trace)
        enforce_s = 0.0
        total_s = 0.0
        for span in trace.spans:
            self.stage_seconds.labels(pool=pool, stage=span.stage).observe(
                span.duration_s
            )
            total_s += span.duration_s
            if span.stage == "enforce":
                enforce_s = span.duration_s
        self.batch_seconds.labels(pool=pool, worker=str(worker)).observe(enforce_s)
        self.ipc_seconds.labels(pool=pool).observe(max(0.0, total_s - enforce_s))

    def stage_breakdown(self, pool: str | None = None) -> dict[str, float]:
        """Total seconds per pool stage from the registry histograms
        (covers every batch ever observed, unlike the bounded trace log)."""
        hist = self.registry.get("pool_stage_seconds")
        totals: dict[str, float] = {}
        if hist is None or not hasattr(hist, "_series"):
            return totals
        for key in hist._series:
            pool_label, stage = key
            if pool is not None and pool_label != pool:
                continue
            state = hist._series[key]
            totals[stage] = totals.get(stage, 0.0) + state.sum_ns / 1e9
        return totals
