"""Cross-process trace spans for the worker-pool data plane.

One :class:`BatchTrace` follows a single batch of a burst from the
parent's ``submit`` through a shard/gateway worker and back: the parent
stamps the *serialize* (ring codec) and *ring_write* spans while
encoding, records the send timestamp, the worker stamps its receive
timestamp (``time.perf_counter`` is CLOCK_MONOTONIC on Linux, so
parent- and worker-side stamps share a clock domain on one host), and
the parent closes the trace with the *queue_wait* (send→receive,
clamped at zero), *enforce* (the worker's measured compute) and *fold*
(result stitching) spans when the batch result is harvested.

Traces ride the existing batch envelopes — the worker's reply tuple
grew one observability slot — so no extra pipe round-trips are spent,
and completed traces land in a bounded :class:`TraceLog` the profiler
and exporters read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["POOL_STAGES", "StageSpan", "BatchTrace", "TraceLog"]

#: The pool pipeline stages, in wire order.
POOL_STAGES: tuple[str, ...] = (
    "serialize",
    "ring_write",
    "queue_wait",
    "enforce",
    "fold",
)


@dataclass(frozen=True)
class StageSpan:
    """One timed stage of one batch; ``start_s`` is a perf_counter stamp."""

    batch_id: str
    span_id: int
    stage: str
    start_s: float
    duration_s: float
    worker: int

    def to_dict(self) -> dict:
        return {
            "batch_id": self.batch_id,
            "span_id": self.span_id,
            "stage": self.stage,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "worker": self.worker,
        }


class BatchTrace:
    """The spans of one batch, identified by ``pool:burst.seq``."""

    __slots__ = ("batch_id", "worker", "spans")

    def __init__(self, batch_id: str, worker: int) -> None:
        self.batch_id = batch_id
        self.worker = worker
        self.spans: list[StageSpan] = []

    def add(self, stage: str, start_s: float, duration_s: float) -> None:
        self.spans.append(
            StageSpan(
                batch_id=self.batch_id,
                span_id=len(self.spans),
                stage=stage,
                start_s=start_s,
                duration_s=duration_s,
                worker=self.worker,
            )
        )

    def stage_seconds(self) -> dict[str, float]:
        return {span.stage: span.duration_s for span in self.spans}

    @property
    def total_s(self) -> float:
        return sum(span.duration_s for span in self.spans)

    def to_dict(self) -> dict:
        return {
            "batch_id": self.batch_id,
            "worker": self.worker,
            "spans": [span.to_dict() for span in self.spans],
        }


class TraceLog:
    """A bounded ring of the most recent completed batch traces."""

    def __init__(self, capacity: int = 256) -> None:
        self._traces: deque[BatchTrace] = deque(maxlen=max(1, capacity))
        self.completed = 0

    def append(self, trace: BatchTrace) -> None:
        self._traces.append(trace)
        self.completed += 1

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self):
        return iter(self._traces)

    def last(self) -> BatchTrace | None:
        return self._traces[-1] if self._traces else None

    def stage_breakdown(self) -> dict[str, float]:
        """Total seconds per stage across the retained traces."""
        totals: dict[str, float] = {}
        for trace in self._traces:
            for span in trace.spans:
                totals[span.stage] = totals.get(span.stage, 0.0) + span.duration_s
        return totals
