"""Runtime observability: metrics registry, trace spans, exporters,
pool health, and the live fleet profiler.

Attach a :class:`RuntimeObservability` to a
:class:`~repro.netstack.sharding.ShardedEnforcer` or
:class:`~repro.core.fleet.GatewayFleet` via ``attach_obs`` and every
hot path — enforcement stages, pool batches, worker pipes — reports
into one mergeable :class:`MetricsRegistry`; leave it detached (or use
:data:`NULL_REGISTRY`) and the runtime keeps today's throughput.
"""

from repro.obs.export import (
    merge_snapshots,
    record_enforcer_stats,
    record_pool_health,
    to_jsonl,
    to_prometheus,
)
from repro.obs.health import HealthThresholds, PoolHealthMonitor, PoolHealthSnapshot
from repro.obs.instrument import (
    DEFAULT_SAMPLE_EVERY,
    ENFORCER_STAGES,
    EnforcerObservability,
    ObsConfig,
    RuntimeObservability,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    histogram_quantile,
)
from repro.obs.profiler import render_top, render_worker_table
from repro.obs.trace import POOL_STAGES, BatchTrace, StageSpan, TraceLog

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "histogram_quantile",
    "POOL_STAGES",
    "StageSpan",
    "BatchTrace",
    "TraceLog",
    "to_prometheus",
    "to_jsonl",
    "merge_snapshots",
    "record_enforcer_stats",
    "record_pool_health",
    "PoolHealthSnapshot",
    "HealthThresholds",
    "PoolHealthMonitor",
    "ENFORCER_STAGES",
    "DEFAULT_SAMPLE_EVERY",
    "ObsConfig",
    "EnforcerObservability",
    "RuntimeObservability",
    "render_top",
    "render_worker_table",
]
