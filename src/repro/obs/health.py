"""Pool health model: structural snapshots and threshold alerting.

:class:`PoolHealthSnapshot` captures what the cumulative
``EnforcerStats`` counters cannot show — the *live* shape of a worker
pool (per-worker queue depth, in-flight bursts, incarnations) next to
its crash/respawn/fallback totals.  :class:`PoolHealthMonitor` applies
threshold rules over successive snapshots and emits structured
:class:`~repro.telemetry.detectors.Alert` events onto the operator
:class:`~repro.ops.bus.AlertBus` — edge-triggered, so a persistent
condition alerts once until it clears (or worsens, for crashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.detectors import Alert

__all__ = [
    "PoolHealthSnapshot",
    "HealthThresholds",
    "PoolHealthMonitor",
]


@dataclass(frozen=True)
class PoolHealthSnapshot:
    """Point-in-time structural view of one worker pool."""

    name: str
    workers: int
    queue_depths: tuple[int, ...]
    outstanding_bursts: int
    incarnations: tuple[int, ...]
    alive: tuple[bool, ...]
    crashes: int
    respawns: int
    batches_replayed: int
    ring_batches: int
    pickled_batches: int
    delta_pushes: int
    snapshot_syncs: int

    @property
    def respawn_counts(self) -> tuple[int, ...]:
        """Respawns per worker slot (incarnation 1 = the original fork)."""
        return tuple(max(0, incarnation - 1) for incarnation in self.incarnations)

    @property
    def pickle_fallback_ratio(self) -> float:
        total = self.ring_batches + self.pickled_batches
        return self.pickled_batches / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workers": self.workers,
            "queue_depths": list(self.queue_depths),
            "outstanding_bursts": self.outstanding_bursts,
            "incarnations": list(self.incarnations),
            "alive": list(self.alive),
            "crashes": self.crashes,
            "respawns": self.respawns,
            "batches_replayed": self.batches_replayed,
            "ring_batches": self.ring_batches,
            "pickled_batches": self.pickled_batches,
            "delta_pushes": self.delta_pushes,
            "snapshot_syncs": self.snapshot_syncs,
        }


@dataclass(frozen=True)
class HealthThresholds:
    """Rule knobs for :class:`PoolHealthMonitor`."""

    #: Alert when a worker's unharvested-batch queue reaches this depth.
    max_queue_depth: int = 8
    #: Alert when this many bursts sit submitted-but-uncollected.
    max_outstanding_bursts: int = 32
    #: Alert when more than this fraction of batches fell back from the
    #: shared ring to pickle transport ...
    max_pickle_fallback_ratio: float = 0.5
    #: ... judged only once at least this many batches have shipped.
    min_batches_for_fallback_rule: int = 8


@dataclass
class PoolHealthMonitor:
    """Edge-triggered threshold rules over pool health snapshots.

    ``check`` returns the alerts newly raised by this snapshot and, when
    a bus is attached, publishes them (the bus stamps timestamps).  All
    alerts ever raised accumulate in :attr:`events`.
    """

    thresholds: HealthThresholds = field(default_factory=HealthThresholds)
    bus: object | None = None
    source: str = "obs"
    events: list[Alert] = field(default_factory=list)
    _seen_crashes: dict[str, int] = field(default_factory=dict)
    _active: set[tuple[str, str]] = field(default_factory=set)

    def check(self, snapshot: PoolHealthSnapshot, degraded: bool = False) -> list[Alert]:
        fresh: list[Alert] = []
        rules = self.thresholds
        name = snapshot.name

        new_crashes = snapshot.crashes - self._seen_crashes.get(name, 0)
        if new_crashes > 0:
            self._seen_crashes[name] = snapshot.crashes
            fresh.append(
                Alert(
                    kind="pool-worker-crash",
                    device=name,
                    detail=(
                        f"{new_crashes} new worker crash(es); "
                        f"{snapshot.respawns} respawn(s), "
                        f"{snapshot.batches_replayed} batch(es) replayed lifetime"
                    ),
                    source=self.source,
                )
            )

        for index, depth in enumerate(snapshot.queue_depths):
            key = (name, f"queue-w{index}")
            if depth >= rules.max_queue_depth:
                if key not in self._active:
                    self._active.add(key)
                    fresh.append(
                        Alert(
                            kind="pool-queue-depth",
                            device=f"{name}-w{index}",
                            detail=(
                                f"{depth} unharvested batch(es) queued "
                                f"(threshold {rules.max_queue_depth})"
                            ),
                            source=self.source,
                        )
                    )
            else:
                self._active.discard(key)

        key = (name, "outstanding")
        if snapshot.outstanding_bursts >= rules.max_outstanding_bursts:
            if key not in self._active:
                self._active.add(key)
                fresh.append(
                    Alert(
                        kind="pool-burst-backlog",
                        device=name,
                        detail=(
                            f"{snapshot.outstanding_bursts} bursts in flight "
                            f"(threshold {rules.max_outstanding_bursts})"
                        ),
                        source=self.source,
                    )
                )
        else:
            self._active.discard(key)

        key = (name, "pickle-fallback")
        shipped = snapshot.ring_batches + snapshot.pickled_batches
        ratio = snapshot.pickle_fallback_ratio
        if (
            shipped >= rules.min_batches_for_fallback_rule
            and ratio > rules.max_pickle_fallback_ratio
        ):
            if key not in self._active:
                self._active.add(key)
                fresh.append(
                    Alert(
                        kind="pool-ring-fallback",
                        device=name,
                        detail=(
                            f"{snapshot.pickled_batches}/{shipped} batches "
                            f"({ratio:.0%}) fell back to pickle transport"
                        ),
                        source=self.source,
                    )
                )
        else:
            self._active.discard(key)

        key = (name, "degraded")
        if degraded:
            if key not in self._active:
                self._active.add(key)
                fresh.append(
                    Alert(
                        kind="pool-degraded",
                        device=name,
                        detail="pool backend degraded to sequential (no fork support)",
                        source=self.source,
                    )
                )
        else:
            self._active.discard(key)

        self.events.extend(fresh)
        if self.bus is not None:
            for alert in fresh:
                self.bus.publish(alert)
        return fresh
