"""Labeled metric primitives with deterministic cross-process merge.

The registry is the observability substrate for the pool runtime: the
parent process and every forked worker each hold their own
:class:`MetricsRegistry`, workers pipe :meth:`~MetricsRegistry.drain`
deltas back with batch results, and the parent folds them in with
:meth:`~MetricsRegistry.merge_snapshot`.  Merging is associative and
commutative by construction — counters and histogram bucket counts are
integers, histogram sums are integer *nanoseconds* (never floats, whose
addition order would leak into the export), and gauges merge by
``max`` (a merged gauge reads as a high-water mark) — so any merge
order yields the identical exported snapshot, which the property suite
pins.

Instrumented code holds *bound children* (``counter.labels(...)``)
so the hot path pays one method call and one dict update per event.
Uninstrumented runs attach :data:`NULL_REGISTRY` instead: its
instruments are shared no-op singletons, so call sites stay
branch-free while a disabled registry keeps today's throughput.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "histogram_quantile",
]

#: Fixed log-scaled latency buckets (seconds): powers of two from 1 µs
#: to ~16.8 s, plus the implicit +Inf overflow slot.  Fixed — not
#: configurable per call site — so histograms from any process always
#: share a bucket layout and merge without resampling.
LATENCY_BUCKETS: tuple[float, ...] = tuple((1 << i) * 1e-6 for i in range(25))

_NS = 1_000_000_000


class _CounterChild:
    __slots__ = ("_series", "_key")

    def __init__(self, series: dict, key: tuple) -> None:
        self._series = series
        self._key = key

    def inc(self, amount: int = 1) -> None:
        self._series[self._key] = self._series.get(self._key, 0) + amount


class _GaugeChild:
    __slots__ = ("_series", "_key")

    def __init__(self, series: dict, key: tuple) -> None:
        self._series = series
        self._key = key

    def set(self, value: float) -> None:
        self._series[self._key] = value


class _HistState:
    __slots__ = ("counts", "count", "sum_ns")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # +1: the +Inf overflow slot
        self.count = 0
        self.sum_ns = 0


class _HistogramChild:
    __slots__ = ("_state", "_buckets")

    def __init__(self, state: _HistState, buckets: tuple[float, ...]) -> None:
        self._state = state
        self._buckets = buckets

    def observe(self, seconds: float) -> None:
        state = self._state
        state.counts[bisect_left(self._buckets, seconds)] += 1
        state.count += 1
        state.sum_ns += int(seconds * _NS + 0.5)


class _Instrument:
    """Shared family plumbing: name, label schema, child cache."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._series: dict = {}
        self._children: dict = {}

    def _key(self, labels: dict) -> tuple:
        if tuple(labels) != self.label_names:
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(value) for value in labels.values())

    def labels(self, **labels):
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child(key)
        return child

    def clear(self) -> None:
        self._series.clear()
        self._children.clear()


class Counter(_Instrument):
    kind = "counter"

    def _make_child(self, key: tuple) -> _CounterChild:
        return _CounterChild(self._series, key)

    def inc(self, amount: int = 1, **labels) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels) -> int:
        return self._series.get(self._key(labels), 0)

    def _snapshot_series(self, key: tuple) -> dict:
        return {"labels": list(key), "value": self._series[key]}


class Gauge(_Instrument):
    kind = "gauge"

    def _make_child(self, key: tuple) -> _GaugeChild:
        return _GaugeChild(self._series, key)

    def set(self, value: float, **labels) -> None:
        self.labels(**labels).set(value)

    def value(self, **labels) -> float:
        return self._series.get(self._key(labels), 0)

    def _snapshot_series(self, key: tuple) -> dict:
        return {"labels": list(key), "value": self._series[key]}


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        self.buckets = tuple(buckets)

    def _make_child(self, key: tuple) -> _HistogramChild:
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = _HistState(len(self.buckets))
        return _HistogramChild(state, self.buckets)

    def observe(self, seconds: float, **labels) -> None:
        self.labels(**labels).observe(seconds)

    def state(self, **labels) -> _HistState | None:
        return self._series.get(self._key(labels))

    def count(self, **labels) -> int:
        state = self.state(**labels)
        return 0 if state is None else state.count

    def sum_seconds(self, **labels) -> float:
        state = self.state(**labels)
        return 0.0 if state is None else state.sum_ns / _NS

    def quantile(self, q: float, **labels) -> float:
        state = self.state(**labels)
        if state is None:
            return 0.0
        return histogram_quantile(self.buckets, state.counts, state.count, q)

    def _snapshot_series(self, key: tuple) -> dict:
        state = self._series[key]
        return {
            "labels": list(key),
            "counts": list(state.counts),
            "count": state.count,
            "sum_ns": state.sum_ns,
        }


def histogram_quantile(
    buckets: tuple[float, ...], counts: list[int], total: int, q: float
) -> float:
    """Estimate the q-quantile as the upper bound of the bucket where the
    cumulative count crosses ``q * total`` (the Prometheus convention;
    the overflow slot reports the largest finite bound)."""
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count:
            return buckets[min(index, len(buckets) - 1)]
    return buckets[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A process-local set of metric families keyed by name."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help: str, labels, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        metric = cls(name, help, tuple(labels), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labels=()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", labels=(), buckets=LATENCY_BUCKETS
    ) -> Histogram:
        metric = self._register(Histogram, name, help, labels, buckets=tuple(buckets))
        if metric.buckets != tuple(buckets):
            raise ValueError(f"histogram {name!r} already registered with other buckets")
        return metric

    def get(self, name: str) -> _Instrument | None:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict:
        """A deterministic, JSON-able view: families sorted by name,
        series sorted by label values."""
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            family: dict = {
                "type": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "series": [
                    metric._snapshot_series(key) for key in sorted(metric._series)
                ],
            }
            if metric.kind == "histogram":
                family["buckets"] = list(metric.buckets)
            out[name] = family
        return out

    def drain(self) -> dict:
        """Snapshot, then zero every series (registrations survive).

        The exactly-once delta idiom the worker pipes use: each drained
        snapshot is merged into the parent precisely once, mirroring
        ``EnforcerStats.delta_since``.
        """
        snap = self.snapshot()
        for metric in self._metrics.values():
            metric.clear()
        return snap

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot (local or from another process) into this
        registry.  Counters and histogram counts/sums add; gauges take
        the elementwise max."""
        for name in sorted(snapshot):
            family = snapshot[name]
            kind = family["type"]
            cls = _KINDS.get(kind)
            if cls is None:
                raise ValueError(f"cannot merge unknown metric type {kind!r}")
            labels = tuple(family["label_names"])
            if kind == "histogram":
                metric = self.histogram(
                    name, family.get("help", ""), labels, buckets=family["buckets"]
                )
            elif kind == "counter":
                metric = self.counter(name, family.get("help", ""), labels)
            else:
                metric = self.gauge(name, family.get("help", ""), labels)
            for series in family["series"]:
                key = tuple(series["labels"])
                if kind == "counter":
                    metric._series[key] = metric._series.get(key, 0) + series["value"]
                elif kind == "gauge":
                    current = metric._series.get(key)
                    value = series["value"]
                    metric._series[key] = value if current is None else max(current, value)
                else:
                    state = metric._series.get(key)
                    if state is None:
                        state = metric._series[key] = _HistState(len(metric.buckets))
                    if len(series["counts"]) != len(state.counts):
                        raise ValueError(
                            f"histogram {name!r} bucket layout mismatch on merge"
                        )
                    for index, count in enumerate(series["counts"]):
                        state.counts[index] += count
                    state.count += series["count"]
                    state.sum_ns += series["sum_ns"]


class _NullChild:
    """Accepts any instrument call and does nothing; ``labels`` returns
    itself so chained call sites stay allocation-free."""

    __slots__ = ()

    def labels(self, **labels):
        return self

    def inc(self, amount: int = 1, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, seconds: float, **labels) -> None:
        pass

    def value(self, **labels) -> int:
        return 0

    def count(self, **labels) -> int:
        return 0

    def sum_seconds(self, **labels) -> float:
        return 0.0

    def quantile(self, q: float, **labels) -> float:
        return 0.0


_NULL_CHILD = _NullChild()


class NullRegistry:
    """API-compatible no-op registry: instrumented code runs unchanged
    while every observation is discarded at the cost of one no-op call."""

    enabled = False

    def counter(self, name: str, help: str = "", labels=()) -> _NullChild:
        return _NULL_CHILD

    def gauge(self, name: str, help: str = "", labels=()) -> _NullChild:
        return _NULL_CHILD

    def histogram(self, name: str, help: str = "", labels=(), buckets=()) -> _NullChild:
        return _NULL_CHILD

    def get(self, name: str) -> None:
        return None

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self) -> dict:
        return {}

    def drain(self) -> dict:
        return {}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass


NULL_REGISTRY = NullRegistry()
