"""`top`-style text rendering of a live pool fleet.

Pure formatting: one frame is a string built from a
:class:`~repro.obs.instrument.RuntimeObservability` bundle, an optional
:class:`~repro.obs.health.PoolHealthSnapshot`, and the health events
raised so far.  The ``obs`` CLI prints successive frames while a replay
runs; tests assert on frame content, so rendering stays deterministic
given identical inputs.
"""

from __future__ import annotations

__all__ = ["render_worker_table", "render_top"]


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return lines


def render_worker_table(obs, pool: str, health=None) -> list[str]:
    """Per-worker rows: batches, p50/p99 enforce latency, queue depth,
    incarnation and respawn count (from the health snapshot when given)."""
    hist = obs.registry.get("pool_worker_batch_seconds")
    workers: dict[int, object] = {}
    if hist is not None and hasattr(hist, "_series"):
        for key, state in hist._series.items():
            pool_label, worker = key
            if pool_label == pool:
                workers[int(worker)] = state
    if health is not None:
        for index in range(health.workers):
            workers.setdefault(index, None)
    rows = []
    for index in sorted(workers):
        state = workers[index]
        if state is not None and state.count:
            batches = state.count
            p50 = hist.quantile(0.50, pool=pool, worker=str(index))
            p99 = hist.quantile(0.99, pool=pool, worker=str(index))
        else:
            batches, p50, p99 = 0, 0.0, 0.0
        depth = incarnation = respawns = alive = "-"
        if health is not None and index < health.workers:
            depth = str(health.queue_depths[index])
            incarnation = str(health.incarnations[index])
            respawns = str(health.respawn_counts[index])
            alive = "up" if health.alive[index] else "down"
        rows.append(
            [
                f"w{index}",
                alive,
                str(batches),
                _fmt_ms(p50).strip(),
                _fmt_ms(p99).strip(),
                depth,
                incarnation,
                respawns,
            ]
        )
    headers = ["worker", "state", "batches", "p50 ms", "p99 ms", "queue", "incarn", "respawns"]
    return _table(headers, rows)


def render_top(
    obs,
    pool: str,
    health=None,
    events=None,
    title: str = "fleet obs",
    degraded: bool = False,
) -> str:
    """One full profiler frame for ``pool``."""
    lines: list[str] = []
    if health is not None:
        summary = (
            f"{health.workers} worker(s), {health.outstanding_bursts} burst(s) in "
            f"flight; {health.crashes} crash(es) / {health.respawns} respawn(s); "
            f"ring {health.ring_batches} / pickled {health.pickled_batches}"
        )
    elif degraded:
        summary = "degraded to sequential (no fork support) — no live workers"
    else:
        summary = "pool not started"
    lines.append(f"{title} — {pool}: {summary}")
    lines.extend(render_worker_table(obs, pool, health))

    breakdown = obs.stage_breakdown(pool)
    if breakdown:
        parts = [
            f"{stage} {total * 1e3:.2f} ms"
            for stage, total in sorted(breakdown.items(), key=lambda item: -item[1])
        ]
        lines.append("stages: " + " | ".join(parts))

    enforcer_hist = obs.registry.get("enforcer_stage_seconds")
    if enforcer_hist is not None and hasattr(enforcer_hist, "_series"):
        parts = []
        for key in sorted(enforcer_hist._series):
            state = enforcer_hist._series[key]
            if state.count:
                parts.append(
                    f"{key[0]} p50 {enforcer_hist.quantile(0.5, stage=key[0]) * 1e6:.0f}us"
                    f"/{state.count} samples"
                )
        if parts:
            lines.append("enforcer (sampled): " + " | ".join(parts))

    if events:
        lines.append(f"health events ({len(events)}):")
        for alert in events[-5:]:
            lines.append(f"  {alert.summary()}")
    else:
        lines.append("health events: none")
    return "\n".join(lines)
