"""Command-line front end.

The prototype ships the Offline Analyzer as a stand-alone Java tool and
the policy tooling as scripts an administrator runs; this module exposes
the same operator workflows over the reproduction:

* ``analyze``      — run the Offline Analyzer over generated corpus apps or the
                     built-in case-study apps and write the json signature database;
* ``check-policy`` — parse a policy file (grammar text or serialized
                     store json) and report its rules; with ``--database``
                     also report per-rule compileability;
* ``policy``       — control-plane operations: ``policy diff`` shows the
                     delta between two policy files, ``policy push``
                     applies a policy file to a versioned store as one
                     delta transaction, ``policy compact`` folds a
                     store's delta-log prefix into a snapshot so
                     late-joining gateways bootstrap in O(suffix);
* ``case-study``   — run one of the §VI-C case studies and print the comparison table;
* ``experiments``  — run the figure/table drivers at a chosen scale;
* ``gateway-bench``— measure gateway packets/sec across the enforcement
                     fast paths (naive vs compiled vs flow-cached vs
                     sharded), plus the Figure-4 workload's latency and
                     throughput through the sharded gateway;
* ``policy-churn`` — measure sustained gateway kpps under continuous
                     rule churn: delta control plane vs whole-flush;
* ``fleet``        — replay a provisioned device fleet across replicated
                     gateways under live policy churn: convergence lag,
                     verdict identity vs a single gateway, and the real
                     multiprocessing shard backend vs the sequential
                     model;
* ``audit``        — replay mixed benign/adversarial fleet traffic with
                     the telemetry pipeline attached: per-scenario
                     detection precision/recall for BorderPatrol vs the
                     IP/DNS and size-threshold baselines, audit-log
                     rotation round-trip, and telemetry overhead;
* ``ops``          — replay cross-gateway evasion campaigns under the
                     operator control plane: per-gateway vs federated
                     recall, streaming (no-calibration) exfil budgets,
                     durable alert-spool round-trip, and alert-bus
                     overhead;
* ``obs``          — run an instrumented pool replay and render live
                     ``top``-style profiler frames (per-worker p50/p99
                     batch latency, stage breakdown, respawn counts,
                     health events), or a one-shot ``--snapshot``;
                     ``--export prom|jsonl`` additionally emits the
                     metrics registry in that format.

Usage::

    python -m repro.cli analyze --output db.json --case-study-apps
    python -m repro.cli check-policy policy.txt --database db.json
    python -m repro.cli policy diff old.json new.txt
    python -m repro.cli policy push corp.txt --store store.json
    python -m repro.cli policy compact store.json
    python -m repro.cli case-study cloud-storage
    python -m repro.cli experiments --fig3-apps 200 --fig4-iterations 300
    python -m repro.cli gateway-bench --packets 10000 --shards 4 --backend pool
    python -m repro.cli policy-churn --packets 10000 --edits 24
    python -m repro.cli fleet --packets 10000 --devices 120 --gateways 3 --backend pool
    python -m repro.cli audit --packets 8000 --devices 60 --gateways 2
    python -m repro.cli ops --packets 12000 --devices 60 --gateways 4
    python -m repro.cli obs --packets 4000 --shards 4 --frames 4
    python -m repro.cli obs --snapshot --export prom --output metrics.prom
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.policy import PolicyLevel, PolicyParseError, parse_policy
from repro.core.policy_store import PolicyStore, PolicyUpdateError
from repro.experiments.audit import run_audit_bench
from repro.experiments.case_studies import run_cloud_storage_case_study, run_facebook_case_study
from repro.experiments.fig3_ioi import run_fig3
from repro.experiments.fig4_latency import run_fig4, run_fig4_gateway_throughput
from repro.experiments.fleet import run_fleet_bench, run_late_joiner_bench
from repro.experiments.gateway_throughput import run_gateway_bench
from repro.experiments.obs import run_obs_profile
from repro.experiments.ops import run_ops_bench
from repro.experiments.policy_churn import run_policy_churn
from repro.experiments.table_validation import run_validation
from repro.runtime.scheduler import SCHEDULERS, SchedulerConfig
from repro.workloads.apps import build_box_like_app, build_calendar_app, build_cloud_storage_app
from repro.workloads.corpus import CorpusConfig, CorpusGenerator


def _cmd_analyze(args: argparse.Namespace) -> int:
    analyzer = OfflineAnalyzer()
    apks = []
    if args.case_study_apps:
        apks.extend(
            app.apk for app in (build_cloud_storage_app(), build_box_like_app(), build_calendar_app())
        )
    if args.corpus_apps:
        generator = CorpusGenerator(CorpusConfig(n_apps=args.corpus_apps, seed=args.seed))
        apks.extend(app.apk for app in generator.generate())
    if not apks:
        print("nothing to analyze: pass --case-study-apps and/or --corpus-apps N", file=sys.stderr)
        return 2
    report = analyzer.analyze_batch(apks)
    Path(args.output).write_text(analyzer.database.to_json(), encoding="utf-8")
    print(
        f"analyzed {report.apps_processed} apps "
        f"({report.total_methods} method signatures, {report.multidex_apps} multi-dex); "
        f"database written to {args.output}"
    )
    return 0


def _load_policy_store(path: str, fmt: str = "auto") -> PolicyStore:
    """Load a policy file as a store: serialized json or Snippet 1 grammar text."""
    text = Path(path).read_text(encoding="utf-8")
    if fmt == "auto":
        try:
            json.loads(text)
            fmt = "json"
        except json.JSONDecodeError:
            fmt = "text"
    if fmt == "json":
        return PolicyStore.from_json(text)
    return PolicyStore.from_policy(parse_policy(text, name=Path(path).stem))


def _rule_compile_report(rule, entries) -> str:
    """How a rule lowers against every app of a signature database."""
    if rule.level is PolicyLevel.HASH:
        touched = sum(1 for entry in entries if rule.hash_matches_entry(entry))
        return f"hash rule: matches {touched}/{len(entries)} enrolled apps"
    touched = methods = fallbacks = 0
    for entry in entries:
        try:
            indexes = entry.matching_indexes(rule.signature_matches)
        except Exception:
            fallbacks += 1
            continue
        if indexes:
            touched += 1
            methods += len(indexes)
    report = f"compiles for {touched}/{len(entries)} apps, {methods} methods matched"
    if fallbacks:
        report += f" ({fallbacks} apps fall back to the string path)"
    return report


def _cmd_check_policy(args: argparse.Namespace) -> int:
    try:
        store = _load_policy_store(args.policy_file, fmt=args.format)
    except (PolicyParseError, KeyError, TypeError) as error:
        print(f"policy rejected: {error}", file=sys.stderr)
        return 1
    print(f"policy {store.name!r} (version {store.version}): {len(store)} rule(s)")
    entries = None
    if args.database:
        from repro.core.database import SignatureDatabase

        entries = SignatureDatabase.load(args.database).entries()
    for rule_id, rule in store.items():
        line = f"  {rule_id:6s} {rule.render()}"
        if entries is not None:
            line += f"  -> {_rule_compile_report(rule, entries)}"
        print(line)
    return 0


def _cmd_policy_diff(args: argparse.Namespace) -> int:
    try:
        old = _load_policy_store(args.old)
        new = _load_policy_store(args.new)
    except (PolicyParseError, KeyError, TypeError) as error:
        print(f"policy rejected: {error}", file=sys.stderr)
        return 1
    target = new.snapshot()
    update = old.diff_update(target)
    print(
        old.unified_diff(
            target, update=update, from_label=args.old, to_label=args.new
        )
    )
    print(f"{len(update)} op(s) turn {args.old} (version {old.version}) into {args.new}")
    return 0


def _cmd_policy_push(args: argparse.Namespace) -> int:
    store_path = Path(args.store)
    if args.compact_every is not None and args.compact_every < 1:
        print("policy push rejected: --compact-every must be >= 1", file=sys.stderr)
        return 2
    try:
        store = PolicyStore.load(store_path) if store_path.exists() else PolicyStore()
        if args.compact_every is not None:
            store.compact_every = args.compact_every
        target = _load_policy_store(args.policy_file).snapshot()
        update = store.diff_update(target)
        if args.dry_run:
            print(update.describe())
            print(f"dry run: {len(update)} op(s), store stays at version {store.version}")
            return 0
        before = store.version
        delta = store.apply(update)
        store.save(store_path)
    except (PolicyParseError, PolicyUpdateError, KeyError, TypeError, OSError) as error:
        print(f"policy push rejected: {error}", file=sys.stderr)
        return 1
    invalidation = "whole-cache" if delta.full else "surgical"
    print(update.describe())
    print(
        f"pushed {args.policy_file} -> {args.store}: version {before} -> {delta.version} "
        f"({len(update)} op(s), {len(delta.changed_rules)} changed rule(s), "
        f"{invalidation} invalidation at subscribed gateways)"
    )
    return 0


def _cmd_policy_compact(args: argparse.Namespace) -> int:
    from repro.core.policy_store import ReplicationError

    try:
        store = PolicyStore.load(args.store)
        log = store.delta_log
        before_records, before_bytes = len(log), len(log.to_json())
        snapshot = store.compact(args.up_to)
        store.save(args.store)
    except (PolicyParseError, ReplicationError, KeyError, TypeError, OSError) as error:
        print(f"policy compact rejected: {error}", file=sys.stderr)
        return 1
    if snapshot is None or before_records == len(log):
        print(
            f"{args.store}: nothing to compact "
            f"(log already based at v{log.base_version}, {len(log)} record(s))"
        )
        return 0
    print(
        f"compacted {args.store}: {before_records} record(s) ({before_bytes} bytes) "
        f"-> snapshot @v{snapshot.version} ({len(snapshot.rules)} rule(s)) "
        f"+ {len(log)}-record suffix ({len(log.to_json())} bytes); "
        f"{snapshot.compacted_records} record(s) folded over the log's lifetime"
    )
    print(
        f"late joiners now bootstrap in {len(log) + 1} record(s) instead of "
        f"replaying {before_records} version(s) of history"
    )
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    if args.name == "cloud-storage":
        result = run_cloud_storage_case_study()
    else:
        result = run_facebook_case_study()
    print(result.table())
    selective = result.achieves_selective_blocking("borderpatrol")
    print(f"\nselective enforcement achieved with BorderPatrol: {selective}")
    return 0 if selective else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    print(run_fig3(n_apps=args.fig3_apps, events_per_app=args.fig3_events).table())
    print()
    print(
        run_validation(
            corpus_size=args.validation_corpus,
            apps_to_test=args.validation_apps,
            events_per_app=args.fig3_events,
        ).table()
    )
    print()
    print(run_fig4(iterations=args.fig4_iterations).table())
    return 0


#: CLI spelling -> runtime spelling for execution backends.
_BACKEND_CHOICES = {"serial": "sequential", "process": "process", "pool": "pool"}

_SCHEDULER_DEFAULTS = SchedulerConfig()


def _add_scheduler_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULERS,
        default="static",
        help="pool batch scheduling: static (one batch per worker per "
        "burst) or adaptive (a BatchScheduler resizes per-worker batch "
        "caps online from queue-wait/overhead signals; needs --backend "
        "pool)",
    )
    parser.add_argument(
        "--scheduler-batch",
        type=int,
        default=_SCHEDULER_DEFAULTS.initial_batch,
        metavar="N",
        help="adaptive scheduler: first-burst per-worker batch-size cap",
    )
    parser.add_argument(
        "--scheduler-min-batch",
        type=int,
        default=_SCHEDULER_DEFAULTS.min_batch,
        metavar="N",
        help="adaptive scheduler: safe floor backlog alerts snap to",
    )
    parser.add_argument(
        "--scheduler-max-batch",
        type=int,
        default=_SCHEDULER_DEFAULTS.max_batch,
        metavar="N",
        help="adaptive scheduler: growth ceiling",
    )


def _scheduler_config(args: argparse.Namespace) -> SchedulerConfig | None:
    config = SchedulerConfig(
        initial_batch=args.scheduler_batch,
        min_batch=args.scheduler_min_batch,
        max_batch=args.scheduler_max_batch,
    )
    return None if config == _SCHEDULER_DEFAULTS else config


def _cmd_gateway_bench(args: argparse.Namespace) -> int:
    try:
        result = run_gateway_bench(
            packets=args.packets,
            flows=args.flows,
            shards=args.shards,
            corpus_apps=args.corpus_apps,
            seed=args.seed,
            backend=_BACKEND_CHOICES[args.backend],
            scheduler=args.scheduler,
            scheduler_config=_scheduler_config(args),
        )
    except ValueError as error:
        print(f"gateway-bench rejected: {error}", file=sys.stderr)
        return 2
    print(result.table())
    if args.fig4_iterations > 0:
        print()
        print(
            run_fig4_gateway_throughput(
                iterations=args.fig4_iterations, shards=args.shards
            ).summary()
        )
    if not result.verdicts_match:
        print("FAST PATH DIVERGED FROM NAIVE ENFORCEMENT", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    try:
        result = run_fleet_bench(
            packets=args.packets,
            devices=args.devices,
            gateways=args.gateways,
            shards_per_gateway=args.shards,
            edits=args.edits,
            corpus_apps=args.corpus_apps,
            seed=args.seed,
            backend_packets=0 if args.skip_backend else args.backend_packets,
            backend=_BACKEND_CHOICES[args.backend],
            scheduler=args.scheduler,
            scheduler_config=_scheduler_config(args),
        )
    except ValueError as error:
        print(f"fleet rejected: {error}", file=sys.stderr)
        return 2
    print(result.table())
    if not result.converged:
        print("GATEWAY REPLICAS FAILED TO CONVERGE", file=sys.stderr)
        return 1
    if not result.verdicts_match:
        print("FLEET DIVERGED FROM SINGLE-GATEWAY ENFORCEMENT", file=sys.stderr)
        return 1
    if not args.skip_late_joiner:
        try:
            late = run_late_joiner_bench(
                versions=args.late_joiner_versions,
                compact_every=args.compact_every,
                packets=min(args.packets, 2_000),
                corpus_apps=args.corpus_apps,
                seed=args.seed,
            )
        except ValueError as error:
            print(f"late-joiner bench rejected: {error}", file=sys.stderr)
            return 2
        print()
        print(late.summary())
        if not late.bootstrap_bound_held:
            print("LATE JOINER REPLAYED MORE THAN SNAPSHOT + SUFFIX", file=sys.stderr)
            return 1
        if not late.converged or not late.verdicts_match:
            print("LATE JOINER DIVERGED FROM THE HEAD GATEWAY", file=sys.stderr)
            return 1
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    try:
        result = run_audit_bench(
            packets=args.packets,
            devices=args.devices,
            gateways=args.gateways,
            shards_per_gateway=args.shards,
            corpus_apps=args.corpus_apps,
            seed=args.seed,
            bursts=args.bursts,
            attack_packets_per_scenario=args.attack_packets,
            measure_overhead=not args.skip_overhead,
        )
    except ValueError as error:
        print(f"audit rejected: {error}", file=sys.stderr)
        return 2
    print(result.table())
    if not result.audit_roundtrip_ok:
        print("AUDIT LOG ROTATION LOST RECORDS", file=sys.stderr)
        return 1
    if not result.borderpatrol_dominates_spoof_replay:
        print(
            "BORDERPATROL DID NOT DOMINATE THE BASELINES ON SPOOF/REPLAY",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    try:
        result = run_ops_bench(
            packets=args.packets,
            devices=args.devices,
            gateways=args.gateways,
            shards_per_gateway=args.shards,
            corpus_apps=args.corpus_apps,
            seed=args.seed,
            bursts=args.bursts,
            measure_overhead=not args.skip_overhead,
        )
    except ValueError as error:
        print(f"ops rejected: {error}", file=sys.stderr)
        return 2
    print(result.table())
    if not result.spool_replay_ok:
        print("DURABLE ALERT SPOOL LOST OR REORDERED ALERTS", file=sys.stderr)
        return 1
    if not result.per_gateway_misses_split:
        print(
            "SPLIT CAMPAIGNS WERE NOT SPLIT: per-gateway detectors caught "
            "what the federation exists to catch",
            file=sys.stderr,
        )
        return 1
    if not result.federated_catches_all:
        print("FEDERATION MISSED A CROSS-GATEWAY CAMPAIGN", file=sys.stderr)
        return 1
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    try:
        profile = run_obs_profile(
            packets=args.packets,
            flows=args.flows,
            shards=args.shards,
            corpus_apps=args.corpus_apps,
            seed=args.seed,
            batches=args.batches,
            sample_every=args.sample_every,
            frames=1 if args.snapshot else args.frames,
            scheduler=args.scheduler,
            scheduler_config=_scheduler_config(args),
        )
    except ValueError as error:
        print(f"obs rejected: {error}", file=sys.stderr)
        return 2
    if args.snapshot:
        print(profile.final_frame())
    else:
        for frame in profile.frames:
            print(frame)
            print()
    if args.scheduler == "adaptive":
        print(profile.scheduler_summary())
    if args.export:
        text = profile.prometheus if args.export == "prom" else profile.jsonl
        if args.output:
            Path(args.output).write_text(text, encoding="utf-8")
            print(f"wrote {args.export} export ({len(text)} bytes) to {args.output}")
        else:
            print(text, end="")
    if profile.degraded:
        print(
            "pool degraded to sequential (no fork support): frames carry "
            "sampled enforcer stages but no live worker rows",
            file=sys.stderr,
        )
    return 0


def _cmd_policy_churn(args: argparse.Namespace) -> int:
    try:
        result = run_policy_churn(
            packets=args.packets,
            flows=args.flows,
            edits=args.edits,
            corpus_apps=args.corpus_apps,
            seed=args.seed,
            shards=args.shards,
        )
    except ValueError as error:
        print(f"policy-churn rejected: {error}", file=sys.stderr)
        return 2
    print(result.table())
    if not result.verdicts_match:
        print("DELTA PATH DIVERGED FROM FULL RECOMPILATION", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="run the Offline Analyzer and write the json database")
    analyze.add_argument("--output", default="signatures.json")
    analyze.add_argument("--case-study-apps", action="store_true")
    analyze.add_argument("--corpus-apps", type=int, default=0, metavar="N")
    analyze.add_argument("--seed", type=int, default=7)
    analyze.set_defaults(func=_cmd_analyze)

    check = subparsers.add_parser(
        "check-policy",
        help="validate a policy file (grammar text or store json) and report its rules",
    )
    check.add_argument("policy_file")
    check.add_argument(
        "--format",
        choices=("auto", "text", "json"),
        default="auto",
        help="input format: Snippet 1 grammar text or serialized PolicyStore json",
    )
    check.add_argument(
        "--database",
        default=None,
        metavar="DB.json",
        help="signature database to report per-rule compileability against",
    )
    check.set_defaults(func=_cmd_check_policy)

    policy = subparsers.add_parser("policy", help="versioned policy control-plane operations")
    policy_sub = policy.add_subparsers(dest="policy_command", required=True)
    diff = policy_sub.add_parser("diff", help="show the delta update between two policy files")
    diff.add_argument("old")
    diff.add_argument("new")
    diff.set_defaults(func=_cmd_policy_diff)
    push = policy_sub.add_parser(
        "push", help="apply a policy file to a versioned store as one delta transaction"
    )
    push.add_argument("policy_file")
    push.add_argument("--store", required=True, metavar="STORE.json")
    push.add_argument("--dry-run", action="store_true")
    push.add_argument(
        "--compact-every",
        type=int,
        default=None,
        metavar="N",
        help="retention policy persisted with the store: auto-compact its "
        "delta log every N committed versions",
    )
    push.set_defaults(func=_cmd_policy_push)
    compact = policy_sub.add_parser(
        "compact",
        help="fold a store's delta-log prefix into a base snapshot + suffix "
        "so late-joining gateways bootstrap in O(suffix)",
    )
    compact.add_argument("store", metavar="STORE.json")
    compact.add_argument(
        "--up-to",
        type=int,
        default=None,
        metavar="VERSION",
        help="compact through this version only (default: the log head)",
    )
    compact.set_defaults(func=_cmd_policy_compact)

    case = subparsers.add_parser("case-study", help="run a §VI-C case study")
    case.add_argument("name", choices=("cloud-storage", "facebook"))
    case.set_defaults(func=_cmd_case_study)

    experiments = subparsers.add_parser("experiments", help="run the evaluation drivers")
    experiments.add_argument("--fig3-apps", type=int, default=200)
    experiments.add_argument("--fig3-events", type=int, default=150)
    experiments.add_argument("--validation-corpus", type=int, default=100)
    experiments.add_argument("--validation-apps", type=int, default=30)
    experiments.add_argument("--fig4-iterations", type=int, default=500)
    experiments.set_defaults(func=_cmd_experiments)

    gateway = subparsers.add_parser(
        "gateway-bench",
        help="measure gateway pps: naive vs compiled vs flow-cached vs sharded",
    )
    gateway.add_argument("--packets", type=int, default=10_000)
    gateway.add_argument("--flows", type=int, default=256)
    gateway.add_argument("--shards", type=int, default=4)
    gateway.add_argument("--corpus-apps", type=int, default=6, metavar="N")
    gateway.add_argument("--seed", type=int, default=7)
    gateway.add_argument(
        "--fig4-iterations",
        type=int,
        default=200,
        help="also drive the Figure-4 stress workload through the sharded "
        "gateway and report latency + kpps (0 disables)",
    )
    gateway.add_argument(
        "--backend",
        choices=tuple(_BACKEND_CHOICES),
        default="serial",
        help="execution engine for the sharded rows: serial (in-process "
        "model), process (fork-per-batch), or pool (persistent worker "
        "pool with delta push); process/pool need the POSIX fork start "
        "method and fall back to serial with a warning where it is "
        "unavailable",
    )
    _add_scheduler_args(gateway)
    gateway.set_defaults(func=_cmd_gateway_bench)

    churn = subparsers.add_parser(
        "policy-churn",
        help="measure sustained gateway kpps under continuous rule churn: "
        "delta control plane vs whole-flush baseline",
    )
    churn.add_argument("--packets", type=int, default=10_000)
    churn.add_argument("--flows", type=int, default=256)
    churn.add_argument("--edits", type=int, default=24)
    churn.add_argument("--shards", type=int, default=4)
    churn.add_argument("--corpus-apps", type=int, default=6, metavar="N")
    churn.add_argument("--seed", type=int, default=7)
    churn.set_defaults(func=_cmd_policy_churn)

    fleet = subparsers.add_parser(
        "fleet",
        help="replay a device-fleet workload across replicated gateways "
        "under live policy churn",
    )
    fleet.add_argument("--packets", type=int, default=10_000)
    fleet.add_argument("--devices", type=int, default=120)
    fleet.add_argument("--gateways", type=int, default=3)
    fleet.add_argument("--shards", type=int, default=2,
                       help="enforcer shards per gateway")
    fleet.add_argument("--edits", type=int, default=12,
                       help="policy-churn bursts committed during the replay")
    fleet.add_argument("--corpus-apps", type=int, default=8, metavar="N")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument(
        "--backend-packets",
        type=int,
        default=10_000,
        help="replay size for the sequential-vs-multiprocessing shard "
        "backend comparison",
    )
    fleet.add_argument(
        "--skip-backend",
        action="store_true",
        help="skip the multiprocessing backend comparison",
    )
    fleet.add_argument(
        "--late-joiner-versions",
        type=int,
        default=240,
        metavar="N",
        help="policy versions committed before the late-joiner gateway "
        "attaches (bootstrap-cost / log-size report)",
    )
    fleet.add_argument(
        "--compact-every",
        type=int,
        default=50,
        metavar="N",
        help="delta-log retention for the late-joiner scenario",
    )
    fleet.add_argument(
        "--skip-late-joiner",
        action="store_true",
        help="skip the late-joiner bootstrap-cost scenario",
    )
    fleet.add_argument(
        "--backend",
        choices=tuple(_BACKEND_CHOICES),
        default="serial",
        help="fleet execution engine: serial (in-process model), process "
        "(fork each gateway's shards per batch), or pool (long-lived "
        "gateway workers with pipelined bursts and delta push); "
        "process/pool need the POSIX fork start method and fall back to "
        "serial with a warning where it is unavailable",
    )
    _add_scheduler_args(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    audit = subparsers.add_parser(
        "audit",
        help="replay mixed benign/adversarial fleet traffic; report detection "
        "precision/recall for BorderPatrol vs the IP/DNS and size-threshold "
        "baselines, plus telemetry overhead",
    )
    audit.add_argument("--packets", type=int, default=8000,
                       help="benign fleet packets in the mixed replay")
    audit.add_argument("--devices", type=int, default=60)
    audit.add_argument("--gateways", type=int, default=2)
    audit.add_argument("--shards", type=int, default=2,
                       help="enforcer shards per gateway")
    audit.add_argument("--corpus-apps", type=int, default=6, metavar="N")
    audit.add_argument("--seed", type=int, default=7)
    audit.add_argument("--bursts", type=int, default=8,
                       help="replay bursts (collectors drain per burst)")
    audit.add_argument("--attack-packets", type=int, default=160,
                       help="packets per stripping/spoofing/replay scenario")
    audit.add_argument(
        "--skip-overhead",
        action="store_true",
        help="skip the telemetry-on vs telemetry-off throughput comparison",
    )
    audit.set_defaults(func=_cmd_audit)

    ops = subparsers.add_parser(
        "ops",
        help="replay cross-gateway evasion campaigns under the operator "
        "control plane; report per-gateway vs federated recall, streaming "
        "budgets, alert-spool durability, and alert-bus overhead",
    )
    ops.add_argument("--packets", type=int, default=12_000,
                     help="benign fleet packets in the mixed replay")
    ops.add_argument("--devices", type=int, default=60)
    ops.add_argument("--gateways", type=int, default=4)
    ops.add_argument("--shards", type=int, default=2,
                     help="enforcer shards per gateway")
    ops.add_argument("--corpus-apps", type=int, default=6, metavar="N")
    ops.add_argument("--seed", type=int, default=7)
    ops.add_argument("--bursts", type=int, default=24,
                     help="replay bursts (the first two thirds are warm-up)")
    ops.add_argument(
        "--skip-overhead",
        action="store_true",
        help="skip the bus-on vs bus-off throughput comparison",
    )
    ops.set_defaults(func=_cmd_ops)

    obs = subparsers.add_parser(
        "obs",
        help="run an instrumented pool replay and render live profiler "
        "frames: per-worker p50/p99 batch latency, pipeline stage "
        "breakdown, respawns, and health events",
    )
    obs.add_argument("--packets", type=int, default=4_000)
    obs.add_argument("--flows", type=int, default=128)
    obs.add_argument("--shards", type=int, default=4)
    obs.add_argument("--corpus-apps", type=int, default=6, metavar="N")
    obs.add_argument("--seed", type=int, default=7)
    obs.add_argument("--batches", type=int, default=8,
                     help="bursts the replay is split into")
    obs.add_argument("--frames", type=int, default=4,
                     help="profiler frames rendered over the replay")
    obs.add_argument("--sample-every", type=int, default=32, metavar="N",
                     help="sample enforcer stage latency on every Nth packet")
    obs.add_argument(
        "--snapshot",
        action="store_true",
        help="one-shot mode: render only the final frame",
    )
    obs.add_argument(
        "--export",
        choices=("prom", "jsonl"),
        default=None,
        help="also emit the metrics registry as Prometheus text or JSONL",
    )
    obs.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the --export text to FILE instead of stdout",
    )
    _add_scheduler_args(obs)
    obs.set_defaults(func=_cmd_obs)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
