"""Command-line front end.

The prototype ships the Offline Analyzer as a stand-alone Java tool and
the policy tooling as scripts an administrator runs; this module exposes
the same operator workflows over the reproduction:

* ``analyze``      — run the Offline Analyzer over generated corpus apps or the
                     built-in case-study apps and write the json signature database;
* ``check-policy`` — parse a policy file and report its rules (grammar validation);
* ``case-study``   — run one of the §VI-C case studies and print the comparison table;
* ``experiments``  — run the figure/table drivers at a chosen scale;
* ``gateway-bench``— measure gateway packets/sec across the enforcement
                     fast paths (naive vs compiled vs flow-cached vs sharded).

Usage::

    python -m repro.cli analyze --output db.json --case-study-apps
    python -m repro.cli check-policy policy.txt
    python -m repro.cli case-study cloud-storage
    python -m repro.cli experiments --fig3-apps 200 --fig4-iterations 300
    python -m repro.cli gateway-bench --packets 10000 --shards 4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.policy import PolicyParseError, parse_policy
from repro.experiments.case_studies import run_cloud_storage_case_study, run_facebook_case_study
from repro.experiments.fig3_ioi import run_fig3
from repro.experiments.fig4_latency import run_fig4
from repro.experiments.gateway_throughput import run_gateway_bench
from repro.experiments.table_validation import run_validation
from repro.workloads.apps import build_box_like_app, build_calendar_app, build_cloud_storage_app
from repro.workloads.corpus import CorpusConfig, CorpusGenerator


def _cmd_analyze(args: argparse.Namespace) -> int:
    analyzer = OfflineAnalyzer()
    apks = []
    if args.case_study_apps:
        apks.extend(
            app.apk for app in (build_cloud_storage_app(), build_box_like_app(), build_calendar_app())
        )
    if args.corpus_apps:
        generator = CorpusGenerator(CorpusConfig(n_apps=args.corpus_apps, seed=args.seed))
        apks.extend(app.apk for app in generator.generate())
    if not apks:
        print("nothing to analyze: pass --case-study-apps and/or --corpus-apps N", file=sys.stderr)
        return 2
    report = analyzer.analyze_batch(apks)
    Path(args.output).write_text(analyzer.database.to_json(), encoding="utf-8")
    print(
        f"analyzed {report.apps_processed} apps "
        f"({report.total_methods} method signatures, {report.multidex_apps} multi-dex); "
        f"database written to {args.output}"
    )
    return 0


def _cmd_check_policy(args: argparse.Namespace) -> int:
    text = Path(args.policy_file).read_text(encoding="utf-8")
    try:
        policy = parse_policy(text, name=Path(args.policy_file).stem)
    except PolicyParseError as error:
        print(f"policy rejected: {error}", file=sys.stderr)
        return 1
    print(f"policy {policy.name!r}: {len(policy)} rule(s)")
    for rule in policy:
        print(f"  {rule.render()}")
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    if args.name == "cloud-storage":
        result = run_cloud_storage_case_study()
    else:
        result = run_facebook_case_study()
    print(result.table())
    selective = result.achieves_selective_blocking("borderpatrol")
    print(f"\nselective enforcement achieved with BorderPatrol: {selective}")
    return 0 if selective else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    print(run_fig3(n_apps=args.fig3_apps, events_per_app=args.fig3_events).table())
    print()
    print(
        run_validation(
            corpus_size=args.validation_corpus,
            apps_to_test=args.validation_apps,
            events_per_app=args.fig3_events,
        ).table()
    )
    print()
    print(run_fig4(iterations=args.fig4_iterations).table())
    return 0


def _cmd_gateway_bench(args: argparse.Namespace) -> int:
    try:
        result = run_gateway_bench(
            packets=args.packets,
            flows=args.flows,
            shards=args.shards,
            corpus_apps=args.corpus_apps,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"gateway-bench rejected: {error}", file=sys.stderr)
        return 2
    print(result.table())
    if not result.verdicts_match:
        print("FAST PATH DIVERGED FROM NAIVE ENFORCEMENT", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="run the Offline Analyzer and write the json database")
    analyze.add_argument("--output", default="signatures.json")
    analyze.add_argument("--case-study-apps", action="store_true")
    analyze.add_argument("--corpus-apps", type=int, default=0, metavar="N")
    analyze.add_argument("--seed", type=int, default=7)
    analyze.set_defaults(func=_cmd_analyze)

    check = subparsers.add_parser("check-policy", help="validate a policy file against the grammar")
    check.add_argument("policy_file")
    check.set_defaults(func=_cmd_check_policy)

    case = subparsers.add_parser("case-study", help="run a §VI-C case study")
    case.add_argument("name", choices=("cloud-storage", "facebook"))
    case.set_defaults(func=_cmd_case_study)

    experiments = subparsers.add_parser("experiments", help="run the evaluation drivers")
    experiments.add_argument("--fig3-apps", type=int, default=200)
    experiments.add_argument("--fig3-events", type=int, default=150)
    experiments.add_argument("--validation-corpus", type=int, default=100)
    experiments.add_argument("--validation-apps", type=int, default=30)
    experiments.add_argument("--fig4-iterations", type=int, default=500)
    experiments.set_defaults(func=_cmd_experiments)

    gateway = subparsers.add_parser(
        "gateway-bench",
        help="measure gateway pps: naive vs compiled vs flow-cached vs sharded",
    )
    gateway.add_argument("--packets", type=int, default=10_000)
    gateway.add_argument("--flows", type=int, default=256)
    gateway.add_argument("--shards", type=int, default=4)
    gateway.add_argument("--corpus-apps", type=int, default=6, metavar="N")
    gateway.add_argument("--seed", type=int, default=7)
    gateway.set_defaults(func=_cmd_gateway_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
