"""Android application package (apk) model.

An apk bundles one or more dex files together with a manifest,
resources, assets and a signing certificate (paper §II-A).  BorderPatrol
identifies an app by a truncated hash of its apk file (paper §VII "Hash
collision"), so the apk model provides stable byte-level content from
which md5 and truncated hashes are derived.
"""

from repro.apk.manifest import AndroidManifest, Permission
from repro.apk.hashing import md5_hex, truncated_hash, collision_probability
from repro.apk.package import ApkFile, Certificate, StoreCategory, build_apk

__all__ = [
    "AndroidManifest",
    "Permission",
    "md5_hex",
    "truncated_hash",
    "collision_probability",
    "ApkFile",
    "Certificate",
    "StoreCategory",
    "build_apk",
]
