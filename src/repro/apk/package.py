"""The apk package: dex blobs + manifest + resources + certificate.

:class:`ApkFile` is the unit that flows through the whole reproduction:
the app store distributes apks, the Offline Analyzer consumes apks to
build the signature database, the emulator installs apks, and the
Context Manager re-parses an app's dex blobs when the app is loaded.
The apk's byte content is deterministic, so its md5 (and the truncated
on-wire identifier derived from it) are stable across components.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from functools import cached_property

from repro.apk.hashing import md5_hex, truncated_hash_hex
from repro.apk.manifest import AndroidManifest
from repro.dex.model import DexFile
from repro.dex.parser import DexParser, DexSerializer


class StoreCategory(str, enum.Enum):
    """Google Play categories used by the evaluation (§VI-B)."""

    BUSINESS = "BUSINESS"
    PRODUCTIVITY = "PRODUCTIVITY"
    TOOLS = "TOOLS"
    COMMUNICATION = "COMMUNICATION"
    SOCIAL = "SOCIAL"


@dataclass(frozen=True)
class Certificate:
    """Developer signing certificate (identity only, no real crypto)."""

    subject: str
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if not self.fingerprint:
            object.__setattr__(self, "fingerprint", md5_hex(self.subject.encode())[:16])


@dataclass(frozen=True)
class ApkFile:
    """An installable application package.

    Attributes
    ----------
    manifest:
        Static app metadata.
    dex_blobs:
        Serialised dex files (multi-dex apps have more than one blob).
    resources:
        Opaque resource table; contributes to the apk hash so two apps
        with identical code but different resources hash differently.
    certificate:
        Signing identity.
    category:
        Store category, used when sampling the BUSINESS/PRODUCTIVITY corpus.
    downloads:
        Popularity proxy ("most downloaded" sampling in §VI-B).
    """

    manifest: AndroidManifest
    dex_blobs: tuple[bytes, ...]
    resources: tuple[tuple[str, bytes], ...] = ()
    certificate: Certificate = Certificate(subject="CN=unknown")
    category: StoreCategory = StoreCategory.PRODUCTIVITY
    downloads: int = 0

    def __post_init__(self) -> None:
        if not self.dex_blobs:
            raise ValueError("an apk must contain at least one dex file")

    # -- byte-level identity ---------------------------------------------------

    @cached_property
    def content_bytes(self) -> bytes:
        """Canonical byte representation used for hashing."""
        header = json.dumps(self.manifest.to_dict(), sort_keys=True).encode("utf-8")
        parts = [b"APK\x01", header, self.certificate.fingerprint.encode("ascii")]
        for name, data in sorted(self.resources):
            parts.append(name.encode("utf-8"))
            parts.append(data)
        parts.extend(self.dex_blobs)
        return b"\x00".join(parts)

    @cached_property
    def md5(self) -> str:
        """Full md5 hex digest: the database key used by the Offline Analyzer."""
        return md5_hex(self.content_bytes)

    @cached_property
    def app_id(self) -> str:
        """Truncated (8-byte) hash carried on the wire by the Context Manager."""
        return truncated_hash_hex(self.content_bytes)

    @property
    def package_name(self) -> str:
        return self.manifest.package_name

    @property
    def size_bytes(self) -> int:
        return len(self.content_bytes)

    @property
    def is_multidex(self) -> bool:
        return len(self.dex_blobs) > 1

    # -- dex access -------------------------------------------------------------

    def parse_dex_files(self) -> list[DexFile]:
        """Parse every dex blob, as dexlib2 would for a real apk."""
        return DexParser().parse_many(self.dex_blobs)

    def merged_dex(self) -> DexFile:
        """Logical union of all dex files (for multi-dex analysis)."""
        dex_files = self.parse_dex_files()
        return dex_files[0].merge(dex_files[1:])

    def method_count(self) -> int:
        return sum(d.method_count for d in self.parse_dex_files())


def build_apk(
    manifest: AndroidManifest,
    dex_files: list[DexFile] | DexFile,
    resources: dict[str, bytes] | None = None,
    certificate: Certificate | None = None,
    category: StoreCategory = StoreCategory.PRODUCTIVITY,
    downloads: int = 0,
) -> ApkFile:
    """Package dex files into an apk, serialising them to blobs."""
    if isinstance(dex_files, DexFile):
        dex_files = [dex_files]
    serializer = DexSerializer()
    blobs = tuple(serializer.serialize(d) for d in dex_files)
    return ApkFile(
        manifest=manifest,
        dex_blobs=blobs,
        resources=tuple(sorted((resources or {}).items())),
        certificate=certificate or Certificate(subject=f"CN={manifest.package_name}"),
        category=category,
        downloads=downloads,
    )
