"""AndroidManifest model.

Only the manifest attributes the rest of the system consumes are
modelled: the package name, version, declared permissions, and the
launchable activity list the monkey exerciser starts from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Permission(str, enum.Enum):
    """Subset of Android permissions relevant to network-capable apps."""

    INTERNET = "android.permission.INTERNET"
    ACCESS_NETWORK_STATE = "android.permission.ACCESS_NETWORK_STATE"
    ACCESS_FINE_LOCATION = "android.permission.ACCESS_FINE_LOCATION"
    READ_EXTERNAL_STORAGE = "android.permission.READ_EXTERNAL_STORAGE"
    WRITE_EXTERNAL_STORAGE = "android.permission.WRITE_EXTERNAL_STORAGE"
    READ_CONTACTS = "android.permission.READ_CONTACTS"
    CAMERA = "android.permission.CAMERA"
    GET_ACCOUNTS = "android.permission.GET_ACCOUNTS"


@dataclass(frozen=True)
class AndroidManifest:
    """Static metadata describing an app package."""

    package_name: str
    version_code: int = 1
    version_name: str = "1.0"
    app_label: str = ""
    permissions: tuple[Permission, ...] = (Permission.INTERNET,)
    activities: tuple[str, ...] = ("MainActivity",)
    min_sdk: int = 21
    target_sdk: int = 25

    def __post_init__(self) -> None:
        if not self.package_name or " " in self.package_name:
            raise ValueError(f"invalid package name: {self.package_name!r}")

    @property
    def label(self) -> str:
        return self.app_label or self.package_name.rsplit(".", 1)[-1]

    def has_permission(self, permission: Permission) -> bool:
        return permission in self.permissions

    @property
    def can_use_network(self) -> bool:
        return Permission.INTERNET in self.permissions

    def to_dict(self) -> dict:
        return {
            "package": self.package_name,
            "versionCode": self.version_code,
            "versionName": self.version_name,
            "label": self.label,
            "permissions": [p.value for p in self.permissions],
            "activities": list(self.activities),
            "minSdkVersion": self.min_sdk,
            "targetSdkVersion": self.target_sdk,
        }
