"""App-identifying hashes.

The Offline Analyzer groups the method-signature mapping of each app
under the md5 hash of its apk (paper §V-A), and the Context Manager
embeds a *truncated* 8-byte form of that hash in every packet so the
Policy Enforcer can select the right mapping (paper §VII).  The
collision-probability estimate from the discussion section is also
implemented here so the DISC-HASH experiment can regenerate it.
"""

from __future__ import annotations

import hashlib
import math

#: Number of bytes of the md5 digest carried in IP options (paper §VII).
TRUNCATED_HASH_BYTES = 8


def md5_hex(data: bytes) -> str:
    """Full md5 digest of an apk's bytes, as lowercase hex."""
    return hashlib.md5(data).hexdigest()


def truncated_hash(data: bytes, length_bytes: int = TRUNCATED_HASH_BYTES) -> bytes:
    """Truncated md5 digest used as the on-wire app identifier."""
    if not 1 <= length_bytes <= 16:
        raise ValueError("truncated hash length must be between 1 and 16 bytes")
    return hashlib.md5(data).digest()[:length_bytes]


def truncated_hash_hex(data: bytes, length_bytes: int = TRUNCATED_HASH_BYTES) -> str:
    return truncated_hash(data, length_bytes).hex()


def collision_probability(n_apps: int, hash_bits: int = TRUNCATED_HASH_BYTES * 8) -> float:
    """Birthday-bound probability that any two of ``n_apps`` collide.

    The paper argues that with 3.3 M apps in the Play Store and an
    8-byte identifier the collision probability stays below 1e-6; this
    closed form (1 - exp(-n(n-1)/2^(b+1))) reproduces that estimate.
    """
    if n_apps < 2:
        return 0.0
    if hash_bits <= 0:
        return 1.0
    exponent = -(n_apps * (n_apps - 1)) / float(2 ** (hash_bits + 1))
    return 1.0 - math.exp(exponent)


def expected_collisions(n_apps: int, hash_bits: int = TRUNCATED_HASH_BYTES * 8) -> float:
    """Expected number of colliding pairs among ``n_apps`` identifiers."""
    if n_apps < 2:
        return 0.0
    return (n_apps * (n_apps - 1)) / float(2 ** (hash_bits + 1))
