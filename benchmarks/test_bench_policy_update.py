"""Benchmark: policy updates under churn — delta control plane vs whole flush.

Replays one heavy-tailed packet stream in bursts while an administrator
toggles a deny rule between bursts, and compares the versioned delta
control plane (:mod:`repro.core.policy_store`) against the legacy
``set_policy`` whole-replacement baseline.  The properties the control
plane must hold:

* delta and flush paths produce the identical verdict sequence (delta
  compilation changes *when* lowering happens, never the decision);
* the delta path never flushes the whole flow cache — every edit is a
  surgical per-app invalidation, so unaffected apps' flows stay warm
  (their misses are bounded by first-seen flows);
* the sharded broadcast converges every shard to the same policy
  version;
* under sustained churn the delta path out-throughputs the flush
  baseline.

Run with:  pytest benchmarks/test_bench_policy_update.py --benchmark-only
Smoke mode (CI): set CHURN_BENCH_PACKETS to a smaller replay size.
"""

import os

import pytest

from repro.experiments.benchmeta import record_bench_metadata
from repro.experiments.policy_churn import run_policy_churn

PACKETS = int(os.environ.get("CHURN_BENCH_PACKETS", "10000"))
FLOWS = max(16, min(256, PACKETS // 8))
EDITS = 24 if PACKETS >= 5000 else 8
SHARDS = 4

#: Wall-clock ratio assertions need a replay long enough to drown out
#: scheduler noise on shared CI runners.
timing_sensitive = pytest.mark.skipif(
    PACKETS < 5000,
    reason="relative-throughput assertions are unreliable on short smoke replays",
)


@pytest.fixture(scope="module")
def churn_result():
    return run_policy_churn(
        packets=PACKETS, flows=FLOWS, edits=EDITS, shards=SHARDS, seed=7
    )


def test_bench_policy_churn_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_policy_churn(
            packets=PACKETS, flows=FLOWS, edits=EDITS, shards=SHARDS, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    assert result.packets == PACKETS
    record_bench_metadata(benchmark.extra_info, smoke=PACKETS < 5000)


def test_delta_and_flush_verdict_identical(churn_result):
    flush = churn_result.results["flush"].verdicts
    for name, config in churn_result.results.items():
        assert config.verdicts == flush, f"{name} diverged from full recompilation"


def test_delta_path_never_flushes_whole_cache(churn_result):
    delta = churn_result.results["delta"]
    flush = churn_result.results["flush"]
    assert delta.whole_flushes == 0
    assert delta.surgical_invalidations == churn_result.edits
    assert flush.whole_flushes == churn_result.edits
    assert flush.surgical_invalidations == 0


def test_delta_preserves_cache_for_unaffected_apps(churn_result):
    delta = churn_result.results["delta"]
    flush = churn_result.results["flush"]
    # Unaffected apps never re-miss: every delta-path miss is either a
    # flow's first packet or a re-miss of a surgically invalidated
    # (churn-app) entry.  The flush baseline re-misses across the board.
    assert delta.cache_misses <= churn_result.flows + delta.entries_invalidated
    assert flush.cache_misses > delta.cache_misses
    assert delta.hit_rate > flush.hit_rate
    # Only the one touched app ever recompiles, once per edit.
    assert 0 < delta.apps_recompiled <= churn_result.edits
    assert delta.entries_invalidated < delta.packets


def test_sharded_broadcast_converges_to_same_version(churn_result):
    delta = churn_result.results["delta"]
    sharded = churn_result.results[f"delta-sharded-{SHARDS}"]
    assert delta.final_policy_version == churn_result.edits
    assert sharded.final_policy_version == churn_result.edits
    assert sharded.whole_flushes == 0
    # Every shard applied every delta.
    assert sharded.surgical_invalidations == churn_result.edits * SHARDS


@timing_sensitive
def test_delta_churn_beats_flush_throughput(churn_result):
    assert churn_result.speedup("delta", baseline="flush") > 1.0
