"""Benchmark: operator control plane — federated recall and bus overhead.

Replays cross-gateway evasion campaigns (source-port rotation splits
each campaign across the fleet by flow hash) under the full operator
control plane and checks the claims the ops subsystem makes:

* the split campaigns are invisible per-gateway (recall < 1.0 on
  ``split_exfil`` and ``split_burst``) and fully caught federated
  (recall 1.00 on every scenario) at audit-benchmark precision;
* exfiltration thresholds stream in from live traffic (EWMA + P²
  quantiles) — no offline calibration replay anywhere;
* the durable alert spool round-trips the delivered alert stream
  losslessly through segment rotation;
* the alert bus itself costs < 10%: identical online + federated
  detection with and without the bus (spool, router, feed) attached.

Run with:  pytest benchmarks/test_bench_ops.py --benchmark-only
Smoke mode (CI): set OPS_BENCH_PACKETS to a smaller replay size.
"""

import os

import pytest

from repro.experiments.benchmeta import record_bench_metadata
from repro.experiments.ops import run_ops_bench
from repro.workloads.adversarial import CROSS_GATEWAY_SCENARIOS

PACKETS = int(os.environ.get("OPS_BENCH_PACKETS", "12000"))
DEVICES = max(24, min(60, PACKETS // 200))
GATEWAYS = 4
BURSTS = 24 if PACKETS >= 5000 else 12

#: The overhead ratio needs a replay long enough to drown out scheduler
#: noise on shared CI runners; smoke runs check detection quality only.
timing_sensitive = pytest.mark.skipif(
    PACKETS < 5000,
    reason="relative-throughput assertions are unreliable on short smoke replays",
)


@pytest.fixture(scope="module")
def ops_result():
    return run_ops_bench(
        packets=PACKETS,
        devices=DEVICES,
        gateways=GATEWAYS,
        shards_per_gateway=2,
        seed=7,
        bursts=BURSTS,
        measure_overhead=PACKETS >= 5000,
    )


def test_bench_ops_sweep(benchmark, ops_result):
    result = benchmark.pedantic(
        lambda: run_ops_bench(
            packets=PACKETS,
            devices=DEVICES,
            gateways=GATEWAYS,
            shards_per_gateway=2,
            seed=7,
            bursts=BURSTS,
            measure_overhead=False,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    assert result.benign_packets == PACKETS
    federated = result.scores["federated"]
    per_gateway = result.scores["per-gateway"]
    record_bench_metadata(benchmark.extra_info, smoke=PACKETS < 5000)
    benchmark.extra_info["per_gateway_budget_bytes"] = result.per_gateway_budget_bytes
    benchmark.extra_info["fleet_budget_bytes"] = result.fleet_budget_bytes
    benchmark.extra_info["precision_federated"] = federated.precision
    for scenario in CROSS_GATEWAY_SCENARIOS:
        benchmark.extra_info[f"recall_gw_{scenario}"] = per_gateway.recall(scenario)
        benchmark.extra_info[f"recall_fleet_{scenario}"] = federated.recall(scenario)
    if ops_result.bus_off_kpps > 0:
        benchmark.extra_info["bus_off_kpps"] = ops_result.bus_off_kpps
        benchmark.extra_info["bus_on_kpps"] = ops_result.bus_on_kpps
        benchmark.extra_info["bus_overhead_pct"] = ops_result.bus_overhead_pct


def test_per_gateway_detectors_miss_the_split_campaigns(ops_result):
    # The gap the federation exists to close: every single gateway's
    # window holds an under-threshold fraction of each split campaign.
    assert ops_result.per_gateway_misses_split
    per_gateway = ops_result.scores["per-gateway"]
    assert per_gateway.recall("split_exfil") < 1.0
    assert per_gateway.recall("split_burst") < 1.0


def test_federation_catches_every_campaign_at_audit_precision(ops_result):
    assert ops_result.federated_catches_all
    federated = ops_result.scores["federated"]
    for scenario in CROSS_GATEWAY_SCENARIOS:
        assert federated.recall(scenario) == 1.0, scenario
    # At least the audit benchmark's precision bar — flags stay attacks.
    assert federated.precision > 0.9
    assert ops_result.scores["per-gateway"].precision > 0.9


def test_budgets_stream_in_without_calibration(ops_result):
    # Thresholds were learned from the live warm-up stream alone, and
    # the fleet-level (merged) budget sits above any single gateway's.
    assert ops_result.per_gateway_budget_bytes > 0
    assert ops_result.fleet_budget_bytes > ops_result.per_gateway_budget_bytes
    assert ops_result.baseline_snapshot["folds"] > 0


def test_alert_spool_roundtrips_the_delivered_stream(ops_result):
    assert ops_result.spool_replay_ok
    assert ops_result.spool_alerts == ops_result.bus_counts["published"]
    assert ops_result.bus_counts["dropped_backpressure"] == 0


@timing_sensitive
def test_alert_bus_overhead_within_budget(ops_result):
    # The acceptance bar: durable alerting must not cost the operator
    # core more than 10% of throughput under identical detection work.
    assert ops_result.bus_on_kpps > 0
    assert ops_result.bus_overhead_pct < 10.0
