"""Benchmarks for the §VII discussion-section quantitative claims.

* hash collisions: with an 8-byte truncated apk hash and 3.3 M Play
  Store apps, the collision probability stays below 1e-6;
* flow sizes: legitimate single-flow transfers span 36 B .. 480 MB, so a
  volume threshold cannot separate uploads from ordinary traffic, and a
  fragmented upload evades any workable threshold.

Run with:  pytest benchmarks/test_bench_discussion.py --benchmark-only
"""

import pytest

from repro.analysis.metrics import (
    hash_collision_probability,
    monte_carlo_collision_estimate,
)
from repro.apk.hashing import expected_collisions
from repro.experiments.case_studies import run_flow_size_study

PLAY_STORE_APPS = 3_300_000


def test_bench_hash_collision_closed_form(benchmark):
    probability = benchmark(hash_collision_probability, PLAY_STORE_APPS, 64)
    # Paper §VII: "the probability of collision is lower than 1e-6".
    assert probability < 1e-6
    assert probability > 0.0


def test_hash_collision_grows_when_hash_shrinks():
    # Sanity of the birthday bound: fewer bits means (much) more collisions.
    p64 = hash_collision_probability(PLAY_STORE_APPS, 64)
    p48 = hash_collision_probability(PLAY_STORE_APPS, 48)
    p32 = hash_collision_probability(PLAY_STORE_APPS, 32)
    assert p64 < p48 < p32
    assert p32 > 0.99  # 32 bits would be unusable at Play-Store scale.
    assert expected_collisions(PLAY_STORE_APPS, 64) < 0.001


def test_hash_collision_monte_carlo_agrees_with_closed_form():
    # Use a deliberately tiny hash space where collisions are observable.
    empirical = monte_carlo_collision_estimate(n_apps=80, hash_bits=16, trials=300, seed=3)
    analytical = hash_collision_probability(80, 16)
    assert empirical == pytest.approx(analytical, abs=0.12)


def test_bench_flow_size_study(benchmark):
    result = benchmark.pedantic(run_flow_size_study, rounds=1, iterations=1)
    print("\n" + result.table())
    # The legitimate flow-size range spans several orders of magnitude
    # (paper: 36 bytes to 480 MB), so every threshold misclassifies.
    assert result.min_legitimate < 1_000
    assert result.max_legitimate > 100_000_000
    for _, false_block_rate, missed_rate in result.threshold_rows:
        assert false_block_rate > 0.0 or missed_rate > 0.0
    # Fragmenting the upload across sockets evades the per-flow threshold.
    assert not result.fragmented_upload_detected
