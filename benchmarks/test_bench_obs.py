"""Benchmark: runtime observability overhead and the latency profile.

Runs the three-variant obs bench (uninstrumented / null-registry /
fully instrumented) over the identical pool-backed 16-batch replay and
checks the observability layer's contract:

* instrumentation never changes a verdict — parity holds on every run,
  smoke or full;
* the attached-but-null code path costs <= 2% wall and live
  instrumentation <= 5% (timing bars bind only on full-size replays,
  per the suite's ``timing_sensitive`` convention);
* the instrumented run yields the per-stage pipeline breakdown
  (serialize / ring_write / queue_wait / enforce / fold) and a
  per-worker p50/p99 latency profile — archived in ``extra_info`` so
  ``BENCH_obs.json`` is the fleet's latency record.

Run with:  pytest benchmarks/test_bench_obs.py --benchmark-only
Smoke mode (CI): set OBS_BENCH_PACKETS to a smaller replay size.
"""

import multiprocessing
import os

import pytest

from repro.experiments.benchmeta import record_bench_metadata
from repro.experiments.obs import run_obs_bench
from repro.obs.trace import POOL_STAGES

PACKETS = int(os.environ.get("OBS_BENCH_PACKETS", "10000"))
SHARDS = 4
BATCHES = 16
ROUNDS = 3 if PACKETS >= 5000 else 2
SMOKE = PACKETS < 5000

#: Overhead ratios need a replay long enough to drown out scheduler
#: noise on shared CI runners; smoke runs pin parity and structure only.
timing_sensitive = pytest.mark.skipif(
    SMOKE,
    reason="relative-overhead assertions are unreliable on short smoke replays",
)

#: The pool (and its cross-process spans) needs the POSIX fork start
#: method; elsewhere the bench still binds enforcer-level sampling.
needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the persistent pool needs the fork start method",
)


@pytest.fixture(scope="module")
def obs_result():
    return run_obs_bench(
        packets=PACKETS,
        flows=256,
        shards=SHARDS,
        seed=7,
        batches=BATCHES,
        rounds=ROUNDS,
    )


def test_bench_obs_sweep(benchmark, obs_result):
    result = benchmark.pedantic(
        lambda: run_obs_bench(
            packets=PACKETS,
            flows=256,
            shards=SHARDS,
            seed=7,
            batches=BATCHES,
            rounds=1,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + obs_result.table())
    assert result.verdicts_match
    record_bench_metadata(benchmark.extra_info, smoke=SMOKE)
    benchmark.extra_info["obs"] = obs_result.to_dict()


def test_instrumentation_never_changes_a_verdict(obs_result):
    # The layer's first promise: observability is read-only on policy.
    assert obs_result.verdicts_match


@needs_fork
def test_stage_breakdown_covers_the_pool_pipeline(obs_result):
    # Every pipeline stage appears in the breakdown, and the batch
    # stages the worker actually measures carry non-zero time.
    assert set(obs_result.stage_seconds) == set(POOL_STAGES)
    assert obs_result.stage_seconds["enforce"] > 0
    assert obs_result.stage_seconds["serialize"] > 0


@needs_fork
def test_per_worker_latency_profile_present(obs_result):
    assert len(obs_result.workers) == SHARDS
    for profile in obs_result.workers:
        assert profile.batches > 0
        assert profile.p99_ms >= profile.p50_ms > 0
        assert profile.respawns == 0


def test_enforcer_stage_sampling_ran(obs_result):
    # Worker-side sampled stage marks made it back to the parent.
    assert sum(obs_result.enforcer_samples.values()) > 0


@timing_sensitive
def test_null_registry_overhead_within_budget(obs_result):
    # Attached-but-null must be nearly free: a per-packet counter tick.
    assert obs_result.null_overhead_pct <= 2.0


@timing_sensitive
def test_instrumented_overhead_within_budget(obs_result):
    # Live metrics + spans + worker registry deltas: <= 5% of wall.
    assert obs_result.instrumented_overhead_pct <= 5.0
