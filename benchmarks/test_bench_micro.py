"""Micro-benchmarks of BorderPatrol's hot paths.

These measure the per-packet and per-app costs of the individual
components — the context tag encoder/decoder, policy evaluation against
a 1,050-rule deny-list, the Offline Analyzer, and one packet's trip
through the full gateway chain — independent of any experiment driver.

Run with:  pytest benchmarks/test_bench_micro.py --benchmark-only
"""

import pytest

from repro.core.database import SignatureDatabase
from repro.core.encoding import IndexWidth, StackTraceEncoder
from repro.core.offline_analyzer import OfflineAnalyzer
from repro.core.packet_sanitizer import PacketSanitizer
from repro.core.policy import DecodedContext, Policy
from repro.core.policy_enforcer import PolicyEnforcer
from repro.netstack.ip import IPPacket
from repro.netstack.netfilter import Verdict
from repro.workloads.apps import build_cloud_storage_app
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.libraries import li_library_list

APP_ID = "00112233445566ff"


@pytest.fixture(scope="module")
def corpus_apk():
    generator = CorpusGenerator(CorpusConfig(n_apps=1, seed=99))
    return generator.generate()[0].apk


def test_bench_encoder_roundtrip(benchmark):
    encoder = StackTraceEncoder(IndexWidth.FIXED_2)
    indexes = list(range(3, 18))

    def roundtrip():
        return encoder.decode(encoder.encode(APP_ID, indexes))

    tag = benchmark(roundtrip)
    assert tag.app_id == APP_ID
    assert len(tag.indexes) == encoder.max_frames()


def test_bench_offline_analyzer(benchmark, corpus_apk):
    def analyze():
        analyzer = OfflineAnalyzer(SignatureDatabase())
        return analyzer.analyze(corpus_apk)

    entry = benchmark(analyze)
    assert entry.method_count == corpus_apk.method_count()


def test_bench_policy_evaluation_large_denylist(benchmark):
    policy = Policy.deny_libraries(li_library_list(), name="li-list")
    app = build_cloud_storage_app()
    context = DecodedContext(
        app_id=APP_ID,
        signatures=tuple(str(s) for s in app.behavior.get("download").call_chain),
    )
    decision = benchmark(policy.evaluate, context)
    # The cloud-storage app's own code is not on the Li list.
    assert decision.allowed


def test_bench_enforcer_per_packet(benchmark, corpus_apk):
    database = SignatureDatabase()
    analyzer = OfflineAnalyzer(database)
    entry = analyzer.analyze(corpus_apk)
    encoder = StackTraceEncoder()
    enforcer = PolicyEnforcer(database=database, policy=Policy.allow_all())
    options = encoder.encode_option(entry.app_id, [0, 1, 2, 3])
    packet = IPPacket(
        src_ip="10.10.0.2", dst_ip="203.0.113.9", src_port=40000, dst_port=443,
        payload_size=512, options=options,
    )
    verdict, _ = benchmark(enforcer.process, packet)
    assert verdict is Verdict.ACCEPT


def test_bench_sanitizer_per_packet(benchmark):
    encoder = StackTraceEncoder()
    sanitizer = PacketSanitizer()
    packet = IPPacket(
        src_ip="10.10.0.2", dst_ip="203.0.113.9", src_port=40000, dst_port=443,
        payload_size=512, options=encoder.encode_option(APP_ID, [1, 2, 3]),
    )
    verdict, sanitized = benchmark(sanitizer.process, packet)
    assert verdict is Verdict.ACCEPT
    assert not sanitized.has_options
