"""Smoke-mode defaults for explicitly-invoked benchmark runs.

The tier-1 suite never collects this directory (``testpaths = tests`` in
``pytest.ini``); anyone running ``pytest benchmarks/...`` by hand gets
the smoke replay sizes below unless they set the env vars themselves.
Full-size runs stay one env var away::

    FLEET_BENCH_PACKETS=10000 pytest benchmarks/test_bench_fleet.py --benchmark-only

CI's benchmarks job always passes explicit sizes, so these defaults
only ever shape interactive runs.
"""

import os

_SMOKE_DEFAULTS = {
    "GATEWAY_BENCH_PACKETS": "2000",
    "CHURN_BENCH_PACKETS": "2000",
    "FLEET_BENCH_PACKETS": "2000",
    "AUDIT_BENCH_PACKETS": "2000",
    "OPS_BENCH_PACKETS": "3000",
    "OBS_BENCH_PACKETS": "2000",
}


def pytest_configure(config):
    # setdefault before the bench modules import: each reads its replay
    # size from the environment at module load.
    for name, value in _SMOKE_DEFAULTS.items():
        os.environ.setdefault(name, value)
