"""Benchmark + reproduction check for Figure 4 (per-request latency).

Reproduces the six-configuration latency decomposition of §VI-D and
checks the deltas the paper highlights: ~+1 ms for the Python NFQUEUE
stage, ~+1.6 ms for ``getStackTrace``, everything else negligible, and
a total overhead small enough to amortise over a socket's lifetime.

Run with:  pytest benchmarks/test_bench_fig4.py --benchmark-only
"""

import pytest

from repro.experiments.fig4_latency import CONFIGURATIONS, run_fig4

ITERATIONS = 300


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(iterations=ITERATIONS)


def test_bench_fig4_latency_sweep(benchmark):
    result = benchmark.pedantic(lambda: run_fig4(iterations=ITERATIONS), rounds=1, iterations=1)
    print("\n" + result.table())
    assert set(result.results) == set(CONFIGURATIONS)


def test_fig4_configuration_ordering(fig4_result):
    mean = fig4_result.mean_ms
    # SLIRP networking is slower than TAP (configurations i vs ii).
    assert mean("default-slirp") > mean("default-tap")
    # Every added component may only increase latency.
    assert mean("default-tap") < mean("default-tap-nfqueue")
    assert mean("default-tap-nfqueue") <= mean("static-inject-tap-nfqueue")
    assert mean("static-inject-tap-nfqueue") < mean("static-getstack-tap-nfqueue")
    assert mean("static-getstack-tap-nfqueue") <= mean("dynamic-tap-nfqueue")


def test_fig4_component_deltas_match_paper(fig4_result):
    # Paper: the NFQUEUE consumer costs ~1 ms per request.
    assert fig4_result.nfqueue_overhead_ms == pytest.approx(1.0, abs=0.35)
    # Paper: getStackTrace costs ~1.6 ms per socket.
    assert fig4_result.getstacktrace_overhead_ms == pytest.approx(1.6, abs=0.4)
    # Total overhead stays in the low single-digit millisecond range.
    assert fig4_result.total_overhead_ms < 3.5


def test_fig4_per_socket_amortisation(fig4_result):
    # The most expensive stage happens once per socket, not once per packet:
    # the absolute per-request cost of the full system stays below ~5 ms,
    # negligible against typical wide-area latencies (paper §VI-D).
    assert fig4_result.mean_ms("dynamic-tap-nfqueue") < 5.0
