"""Ablation benches for the design choices DESIGN.md §5 calls out.

* index width: the fixed 2-byte frame encoding vs the variable 2/3-byte
  encoding proposed for multi-dex apps (§VII);
* enforcement granularity: method- vs class- vs library-level rules on
  the cloud-storage case study;
* tag-replay hardening: the setsockopt-once kernel policy (§VII);
* per-socket amortisation: keep-alive sockets pay the stack-capture cost
  once and reuse the tag for every subsequent request (§VI-D).

Run with:  pytest benchmarks/test_bench_ablation.py --benchmark-only
"""

import pytest

from repro.core.encoding import EncodingError, IndexWidth, StackTraceEncoder
from repro.core.policy import Policy, PolicyAction, PolicyLevel, PolicyRule
from repro.core.deployment import BorderPatrolDeployment
from repro.netstack.sockets import Capability, PermissionDenied
from repro.netstack.ip import IPOptions, BORDERPATROL_OPTION_TYPE
from repro.network.topology import EnterpriseNetwork
from repro.workloads.apps import build_cloud_storage_app
from repro.workloads.stress import build_stress_app, run_stress_test

APP_ID = "0123456789abcdef"


# ---------------------------------------------------------------------------
# Index-width ablation.
# ---------------------------------------------------------------------------

def test_bench_encoding_fixed_width(benchmark):
    encoder = StackTraceEncoder(IndexWidth.FIXED_2)
    indexes = list(range(40, 52))
    encoded = benchmark(encoder.encode, APP_ID, indexes)
    assert encoder.decode(encoded).indexes == tuple(indexes)


def test_bench_encoding_variable_width(benchmark):
    encoder = StackTraceEncoder(IndexWidth.VARIABLE)
    indexes = [70_000, 12, 300_000, 99]  # indexes beyond the 2-byte range
    encoded = benchmark(encoder.encode, APP_ID, indexes)
    assert encoder.decode(encoded).indexes == tuple(indexes)


def test_fixed_width_cannot_address_multidex_methods():
    encoder = StackTraceEncoder(IndexWidth.FIXED_2)
    with pytest.raises(EncodingError):
        encoder.encode(APP_ID, [70_000])


def test_variable_width_trades_capacity_for_range():
    fixed = StackTraceEncoder(IndexWidth.FIXED_2)
    variable = StackTraceEncoder(IndexWidth.VARIABLE)
    # Worst-case frame capacity shrinks when every index needs 3 bytes.
    assert variable.max_frames() < fixed.max_frames()
    # But small indexes still use 2 bytes, so mixed stacks fit more frames
    # than the worst case suggests.
    small_indexes = list(range(1, 16))
    assert len(variable.fit_indexes(small_indexes)) == len(fixed.fit_indexes(small_indexes))


# ---------------------------------------------------------------------------
# Enforcement-granularity ablation.
# ---------------------------------------------------------------------------

def _run_cloud_app_under(policy: Policy) -> dict[str, bool]:
    app = build_cloud_storage_app()
    network = EnterpriseNetwork()
    for endpoint in app.behavior.endpoints():
        network.add_server(endpoint)
    deployment = BorderPatrolDeployment(network=network, policy=policy)
    device = deployment.provision_device()
    process = deployment.install_and_launch(device, app.apk, app.behavior)
    return {f.name: process.invoke(f).completed for f in app.behavior}


def test_bench_granularity_ablation(benchmark):
    app = build_cloud_storage_app()
    upload_signature = str(app.signature("upload"))

    def run_all_levels():
        method_policy = Policy(name="method")
        method_policy.add_rule(
            PolicyRule(PolicyAction.DENY, PolicyLevel.METHOD, upload_signature)
        )
        class_policy = Policy(name="class")
        class_policy.add_rule(
            PolicyRule(PolicyAction.DENY, PolicyLevel.CLASS, app.signature("upload").slash_class)
        )
        library_policy = Policy(name="library")
        library_policy.add_rule(
            PolicyRule(PolicyAction.DENY, PolicyLevel.LIBRARY, "com/cloudbox/android")
        )
        return {
            "method": _run_cloud_app_under(method_policy),
            "class": _run_cloud_app_under(class_policy),
            "library": _run_cloud_app_under(library_policy),
        }

    results = benchmark.pedantic(run_all_levels, rounds=1, iterations=1)
    # Method- and class-level rules surgically remove the upload path.
    for level in ("method", "class"):
        assert results[level]["upload"] is False
        assert results[level]["download"] is True
        assert results[level]["login"] is True
    # A library-level rule on the app's own package is too coarse: it kills
    # every functionality, which is exactly why the finer levels exist.
    assert all(completed is False for completed in results["library"].values())


# ---------------------------------------------------------------------------
# Tag-replay hardening ablation.
# ---------------------------------------------------------------------------

def test_tag_replay_hardening_blocks_second_setsockopt():
    app = build_stress_app()
    network = EnterpriseNetwork()
    for endpoint in app.behavior.endpoints():
        network.add_server(endpoint)
    deployment = BorderPatrolDeployment(network=network, tag_replay_hardening=True)
    device = deployment.provision_device()
    process = deployment.install_and_launch(device, app.apk, app.behavior)
    # Normal operation is unaffected: the Context Manager writes each
    # socket's options exactly once.
    outcome = process.invoke("http_get")
    assert outcome.completed

    # A malicious app replaying a benign tag onto a fresh socket is now
    # rejected by the kernel on the second write attempt.
    kernel = device.device.kernel
    fd = kernel.socket(owner_pid=999)
    kernel.connect(fd, "203.0.113.1", 443)
    replayed = IPOptions.single(BORDERPATROL_OPTION_TYPE, b"\x00" * 10)
    kernel.setsockopt(fd, 0, 4, replayed, capabilities=Capability.NONE)
    with pytest.raises(PermissionDenied):
        kernel.setsockopt(fd, 0, 4, replayed, capabilities=Capability.NONE)


# ---------------------------------------------------------------------------
# Per-socket amortisation (keep-alive) ablation.
# ---------------------------------------------------------------------------

def test_bench_keepalive_amortises_stack_capture(benchmark):
    def run(keep_alive: bool) -> float:
        app = build_stress_app()
        if keep_alive:
            functionality = app.behavior.functionalities[0]
            request = functionality.requests[0]
            object.__setattr__(request, "keep_alive", True)
        network = EnterpriseNetwork()
        for endpoint in app.behavior.endpoints():
            network.add_server(endpoint)
        deployment = BorderPatrolDeployment(network=network)
        device = deployment.provision_device()
        process = deployment.install_and_launch(device, app.apk, app.behavior)
        return run_stress_test(process, iterations=100, configuration="amortisation").mean_ms

    def run_both():
        return run(keep_alive=False), run(keep_alive=True)

    per_socket, keep_alive = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Reusing the socket skips hooking, getStackTrace, encoding and setsockopt
    # on every request after the first, so the mean per-request latency drops
    # by roughly the full Context Manager cost (paper §VI-D amortisation).
    assert keep_alive < per_socket - 1.0
