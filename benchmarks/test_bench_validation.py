"""Benchmark + reproduction check for the §VI-B1 validation study.

A deny policy over the (synthetic) Li et al. library list is enforced on
a corpus sample covering the most popular flagged libraries.  The paper
reports that all flagged-library traffic is dropped and that no other
app behaviour changes; the scorer verifies both against ground truth.

Run with:  pytest benchmarks/test_bench_validation.py --benchmark-only
"""

import pytest

from repro.experiments.table_validation import run_validation

CORPUS_SIZE = 120
APPS_TO_TEST = 40
EVENTS_PER_APP = 150


@pytest.fixture(scope="module")
def validation_result():
    return run_validation(
        corpus_size=CORPUS_SIZE, apps_to_test=APPS_TO_TEST, events_per_app=EVENTS_PER_APP
    )


def test_bench_validation_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_validation(
            corpus_size=CORPUS_SIZE, apps_to_test=APPS_TO_TEST, events_per_app=EVENTS_PER_APP
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    assert result.apps_tested > 0


def test_validation_blocks_all_flagged_traffic(validation_result):
    score = validation_result.score
    assert score.flagged_packets > 0, "the selected apps must exercise flagged libraries"
    assert score.block_rate == 1.0
    assert not score.leaked_packet_ids


def test_validation_preserves_all_other_traffic(validation_result):
    score = validation_result.score
    assert score.clean_packets > 0
    assert score.preserve_rate == 1.0
    assert not score.collateral_packet_ids
    assert score.functionality_preservation == 1.0


def test_validation_blocks_ads_and_analytics(validation_result):
    # The paper's manual observation: ads stop rendering, analytics blocking
    # is invisible; both kinds of flagged traffic must have been exercised
    # and blocked in this run.
    assert validation_result.ads_functionalities_blocked > 0
    assert validation_result.analytics_functionalities_blocked > 0
    assert validation_result.policy_rules == 1050
