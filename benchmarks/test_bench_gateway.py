"""Benchmark: gateway enforcement fast paths on a multi-flow packet replay.

Replays the same heavy-tailed 10,000-packet stream through four gateway
configurations — the paper's naive per-packet decode-and-evaluate
pipeline, the compiled-policy integer path, compiled + conntrack-style
flow cache, and the ``--queue-balance`` sharded deployment — and checks
the properties the fast path must preserve:

* every path produces the identical verdict sequence;
* the flow-cached path performs strictly fewer full index→string
  decodes than it processes packets (decoding amortises per flow);
* sharded (modelled parallel) throughput scales with the shard count.

Run with:  pytest benchmarks/test_bench_gateway.py --benchmark-only
Smoke mode (CI): set GATEWAY_BENCH_PACKETS to a smaller replay size.
"""

import os

import pytest

from repro.experiments.benchmeta import record_bench_metadata
from repro.experiments.gateway_throughput import run_gateway_bench

PACKETS = int(os.environ.get("GATEWAY_BENCH_PACKETS", "10000"))
FLOWS = max(16, min(256, PACKETS // 8))
SHARDS = 4

#: Wall-clock ratio assertions need a replay long enough to drown out
#: scheduler noise (smoke mode on shared CI runners times windows of a
#: few ms, where one stall flips a ratio with no code defect).
timing_sensitive = pytest.mark.skipif(
    PACKETS < 5000,
    reason="relative-throughput assertions are unreliable on short smoke replays",
)


@pytest.fixture(scope="module")
def gateway_result():
    return run_gateway_bench(packets=PACKETS, flows=FLOWS, shards=SHARDS, seed=7)


def test_bench_gateway_throughput_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_gateway_bench(packets=PACKETS, flows=FLOWS, shards=SHARDS, seed=7),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    assert result.packets == PACKETS
    record_bench_metadata(benchmark.extra_info, smoke=PACKETS < 5000)


def test_all_fast_paths_verdict_identical(gateway_result):
    naive = gateway_result.results["naive"].verdicts
    for name, config in gateway_result.results.items():
        assert config.verdicts == naive, f"{name} diverged from naive enforcement"


def test_cached_path_amortises_decoding(gateway_result):
    cached = gateway_result.results["cached"]
    assert cached.cache_hits > 0
    assert cached.full_decodes < cached.packets
    # Decoding happens once per flow (for the audit record), not per packet.
    assert cached.full_decodes <= FLOWS
    assert cached.cache_hits + cached.cache_misses == cached.packets


def test_naive_path_decodes_every_packet(gateway_result):
    naive = gateway_result.results["naive"]
    assert naive.full_decodes == naive.packets
    assert naive.cache_hits == 0
    assert naive.compiled_evals == 0


def test_compiled_path_avoids_string_evaluation(gateway_result):
    compiled = gateway_result.results["compiled"]
    assert compiled.compiled_evals == compiled.packets
    assert compiled.fallback_evals == 0


@timing_sensitive
def test_fast_paths_beat_naive_throughput(gateway_result):
    assert gateway_result.speedup("compiled") > 1.0
    assert gateway_result.speedup("cached") > gateway_result.speedup("compiled")


def test_sharding_balances_flows_across_shards(gateway_result):
    many = gateway_result.results[f"sharded-{SHARDS}"]
    assert sum(many.shard_packet_counts) == many.packets
    assert len([count for count in many.shard_packet_counts if count > 0]) > 1


@timing_sensitive
def test_sharded_throughput_scales_with_shard_count(gateway_result):
    one = gateway_result.results["sharded-1"]
    many = gateway_result.results[f"sharded-{SHARDS}"]
    # Modelled parallel wall-clock is the slowest shard; with a
    # heavy-tailed flow mix the speedup is sub-linear but must be real.
    assert many.pps > 1.3 * one.pps
