"""Benchmark: audit-subsystem detection quality and telemetry overhead.

Replays mixed benign/adversarial fleet traffic with the telemetry
pipeline attached and checks the claims the audit subsystem makes:

* BorderPatrol's contextual attribution strictly dominates the IP/DNS
  and flow-size baselines on the spoof and replay scenarios (which the
  baselines cannot see at all), and catches every evasive scenario;
* the baselines keep their one honest win: bulk exfiltration to a
  blocklisted domain;
* audit-log segment rotation round-trips the full mixed record stream
  losslessly;
* telemetry-on throughput stays within 15% of telemetry-off over the
  identical benign replay.

Run with:  pytest benchmarks/test_bench_audit.py --benchmark-only
Smoke mode (CI): set AUDIT_BENCH_PACKETS to a smaller replay size.
"""

import os

import pytest

from repro.experiments.audit import run_audit_bench
from repro.experiments.benchmeta import record_bench_metadata
from repro.workloads.adversarial import EVASIVE_SCENARIOS

PACKETS = int(os.environ.get("AUDIT_BENCH_PACKETS", "8000"))
DEVICES = max(20, min(60, PACKETS // 130))
GATEWAYS = 2

#: The overhead ratio needs a replay long enough to drown out scheduler
#: noise on shared CI runners; smoke runs check detection quality only.
timing_sensitive = pytest.mark.skipif(
    PACKETS < 5000,
    reason="relative-throughput assertions are unreliable on short smoke replays",
)


@pytest.fixture(scope="module")
def audit_result():
    return run_audit_bench(
        packets=PACKETS,
        devices=DEVICES,
        gateways=GATEWAYS,
        shards_per_gateway=2,
        seed=7,
        measure_overhead=PACKETS >= 5000,
    )


def test_bench_audit_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_audit_bench(
            packets=PACKETS,
            devices=DEVICES,
            gateways=GATEWAYS,
            shards_per_gateway=2,
            seed=7,
            measure_overhead=False,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    assert result.benign_packets == PACKETS
    record_bench_metadata(benchmark.extra_info, smoke=PACKETS < 5000)


def test_borderpatrol_dominates_spoof_and_replay(audit_result):
    assert audit_result.borderpatrol_dominates_spoof_replay


def test_borderpatrol_catches_every_evasive_scenario(audit_result):
    borderpatrol = audit_result.scores["borderpatrol"]
    for scenario in EVASIVE_SCENARIOS:
        assert borderpatrol.recall(scenario) > 0.9, scenario
    # Attribution, not shotgunning: flags stay overwhelmingly attacks.
    assert borderpatrol.precision > 0.9


def test_baselines_blind_to_evasive_scenarios(audit_result):
    # The comparison stays honest: the baselines do catch the naive
    # smash-and-grab, they just cannot attribute the evasions.
    assert audit_result.scores["ip-dns"].recall("bulk_exfil") == 1.0
    for scenario in EVASIVE_SCENARIOS:
        assert audit_result.scores["ip-dns"].recall(scenario) == 0.0
        assert audit_result.scores["size-threshold"].recall(scenario) == 0.0


def test_audit_rotation_roundtrips_the_mixed_stream(audit_result):
    assert audit_result.records_published == audit_result.packets
    assert audit_result.segments_written > 0
    assert audit_result.audit_roundtrip_ok


@timing_sensitive
def test_telemetry_overhead_within_budget(audit_result):
    # The acceptance bar: observability must not cost the gateway more
    # than 15% of its benign-traffic throughput.
    assert audit_result.telemetry_on_kpps > 0
    assert audit_result.telemetry_overhead_pct < 15.0
