"""Benchmark: replicated gateway fleet under live policy churn.

Replays a provisioned device fleet's heavy-tailed trace across N
gateway replicas that share one policy store through the serialized
delta log, while an administrator commits rule edits between bursts,
and checks the properties the fleet runtime must hold:

* every replica converges to the store's exact version and rule-table
  fingerprint (verified hash chain, not just a version counter);
* the fleet's stitched verdict sequence is identical to a single
  head-subscribed gateway replaying the same schedule — replication
  never changes what the policy decides;
* convergence lag opens while edits are committed (replicas off the
  live push path) and closes on catch-up replay;
* flow-hash routing spreads the fleet's traffic across every gateway;
* the real ``multiprocessing`` shard backend produces verdicts
  identical to the sequential model, and on multi-core hosts beats it
  in measured wall-clock on the 10k-packet replay.

Run with:  pytest benchmarks/test_bench_fleet.py --benchmark-only
Smoke mode (CI): set FLEET_BENCH_PACKETS to a smaller replay size.
"""

import os

import pytest

from repro.experiments.fleet import (
    available_cpus,
    run_fleet_bench,
    run_shard_backend_comparison,
)

PACKETS = int(os.environ.get("FLEET_BENCH_PACKETS", "10000"))
DEVICES = max(20, min(120, PACKETS // 80))
GATEWAYS = 3
SHARDS = 2
EDITS = 12 if PACKETS >= 5000 else 4

#: Wall-clock ratio assertions need a replay long enough to drown out
#: scheduler noise on shared CI runners.
timing_sensitive = pytest.mark.skipif(
    PACKETS < 5000,
    reason="relative-throughput assertions are unreliable on short smoke replays",
)

#: Real fork parallelism needs real cores; on a single-CPU host the
#: process backend can only demonstrate verdict identity, not speedup.
multicore = pytest.mark.skipif(
    available_cpus() < 2,
    reason="multiprocessing speedup needs at least two schedulable CPUs",
)


@pytest.fixture(scope="module")
def fleet_result():
    return run_fleet_bench(
        packets=PACKETS,
        devices=DEVICES,
        gateways=GATEWAYS,
        shards_per_gateway=SHARDS,
        edits=EDITS,
        seed=7,
        backend_packets=0,
    )


@pytest.fixture(scope="module")
def backend_result():
    return run_shard_backend_comparison(packets=PACKETS, shards=4, corpus_apps=6, seed=7)


def test_bench_fleet_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_fleet_bench(
            packets=PACKETS,
            devices=DEVICES,
            gateways=GATEWAYS,
            shards_per_gateway=SHARDS,
            edits=EDITS,
            seed=7,
            backend_packets=0,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    assert result.packets == PACKETS


def test_replicas_converge_to_identical_version(fleet_result):
    versions = set(fleet_result.final_versions.values())
    assert versions == {fleet_result.store_version}
    assert fleet_result.converged  # fingerprint-verified, not just counters


def test_fleet_verdicts_match_single_gateway(fleet_result):
    assert len(fleet_result.fleet_verdicts) == fleet_result.packets
    assert fleet_result.verdicts_match


def test_convergence_lag_opens_and_closes(fleet_result):
    # Replicas were off the live path, so the committed edits opened a
    # real version lag before each catch-up...
    assert all(lag > 0 for lag in fleet_result.max_lag.values())
    # ...and every replica replayed every committed transaction.
    for applied in fleet_result.records_applied.values():
        assert applied == fleet_result.store_version


def test_traffic_spreads_across_all_gateways(fleet_result):
    assert len(fleet_result.per_gateway_packets) == GATEWAYS
    assert sum(fleet_result.per_gateway_packets) == fleet_result.packets
    assert all(count > 0 for count in fleet_result.per_gateway_packets)


def test_catch_up_reuses_interned_rule_parses(fleet_result):
    # Convergence cost must drop replica-over-replica: the delta log's
    # rule strings are parsed once and interned, so with 3 gateways
    # replaying the identical records (plus churn toggles re-committing
    # the same rule texts) catch-up reuses far more parses than it does
    # cold ones.
    hits = fleet_result.catch_up_parse_hits
    misses = fleet_result.catch_up_parse_misses
    assert hits + misses > 0  # the churn schedule replayed add/replace ops
    assert hits > misses


def test_policy_churn_surfaces_hottest_apps(fleet_result):
    # The rotating per-app deny edits must register as per-app cache churn.
    assert fleet_result.top_churn_apps
    assert all(count > 0 for _, count in fleet_result.top_churn_apps)


def test_process_backend_verdict_identical(backend_result):
    assert backend_result.packets == PACKETS
    assert backend_result.verdicts_match


@timing_sensitive
@multicore
def test_process_backend_beats_sequential_wall_clock(backend_result):
    # The acceptance bar for the modelled parallel speedup: the real
    # fork backend must win on actual wall-clock, not just in the model.
    assert backend_result.speedup > 1.0
