"""Benchmark: replicated gateway fleet under live policy churn.

Replays a provisioned device fleet's heavy-tailed trace across N
gateway replicas that share one policy store through the serialized
delta log, while an administrator commits rule edits between bursts,
and checks the properties the fleet runtime must hold:

* every replica converges to the store's exact version and rule-table
  fingerprint (verified hash chain, not just a version counter);
* the fleet's stitched verdict sequence is identical to a single
  head-subscribed gateway replaying the same schedule — replication
  never changes what the policy decides;
* convergence lag opens while edits are committed (replicas off the
  live push path) and closes on catch-up replay;
* flow-hash routing spreads the fleet's traffic across every gateway;
* the real ``multiprocessing`` shard backends (fork-per-batch and the
  persistent worker pool) produce verdicts identical to the sequential
  model, and on multi-core hosts beat it in measured wall-clock on the
  10k-packet replay;
* the persistent pool amortizes worker setup across the batched replay,
  so it beats fork-per-batch wall-clock on multi-core hosts and its
  amortized per-batch IPC cost lands in BENCH_fleet.json next to the
  fork backend's per-batch setup cost;
* a gateway attaching after heavy policy churn bootstraps from the
  compacted log's snapshot in O(suffix) records — never more than
  suffix + 1 — instead of replaying the full history, and still lands
  on the head fingerprint with verdict-identical enforcement;
* the adaptive batch scheduler replaces the hand-tuned static 16-burst
  split without giving back throughput: verdict-identical by
  construction, and at least as fast on multi-core hosts.

Run with:  pytest benchmarks/test_bench_fleet.py --benchmark-only
Smoke mode (CI): set FLEET_BENCH_PACKETS to a smaller replay size.
The late-joiner churn depth stays at LATE_JOINER_VERSIONS (default 240,
acceptance floor 200) even in smoke mode — it is control-plane work,
not packet replay.
"""

import os

import pytest

from repro.experiments.benchmeta import record_bench_metadata
from repro.experiments.fleet import (
    available_cpus,
    run_fleet_bench,
    run_late_joiner_bench,
    run_scheduler_comparison,
    run_shard_backend_comparison,
)

PACKETS = int(os.environ.get("FLEET_BENCH_PACKETS", "10000"))
DEVICES = max(20, min(120, PACKETS // 80))
GATEWAYS = 3
SHARDS = 2
EDITS = 12 if PACKETS >= 5000 else 4
LATE_JOINER_VERSIONS = int(os.environ.get("LATE_JOINER_VERSIONS", "240"))
COMPACT_EVERY = 50

#: Wall-clock ratio assertions need a replay long enough to drown out
#: scheduler noise on shared CI runners.
timing_sensitive = pytest.mark.skipif(
    PACKETS < 5000,
    reason="relative-throughput assertions are unreliable on short smoke replays",
)

#: Real fork parallelism needs real cores; on a single-CPU host the
#: process backend can only demonstrate verdict identity, not speedup.
multicore = pytest.mark.skipif(
    available_cpus() < 2,
    reason="multiprocessing speedup needs at least two schedulable CPUs",
)


@pytest.fixture(scope="module")
def fleet_result():
    return run_fleet_bench(
        packets=PACKETS,
        devices=DEVICES,
        gateways=GATEWAYS,
        shards_per_gateway=SHARDS,
        edits=EDITS,
        seed=7,
        backend_packets=0,
    )


@pytest.fixture(scope="module")
def backend_result():
    return run_shard_backend_comparison(packets=PACKETS, shards=4, corpus_apps=6, seed=7)


@pytest.fixture(scope="module")
def late_joiner_result():
    return run_late_joiner_bench(
        versions=LATE_JOINER_VERSIONS,
        compact_every=COMPACT_EVERY,
        packets=min(PACKETS, 2_000),
        corpus_apps=6,
        seed=7,
    )


def test_bench_fleet_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_fleet_bench(
            packets=PACKETS,
            devices=DEVICES,
            gateways=GATEWAYS,
            shards_per_gateway=SHARDS,
            edits=EDITS,
            seed=7,
            backend_packets=0,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())
    assert result.packets == PACKETS
    record_bench_metadata(benchmark.extra_info, smoke=PACKETS < 5000)


def test_replicas_converge_to_identical_version(fleet_result):
    versions = set(fleet_result.final_versions.values())
    assert versions == {fleet_result.store_version}
    assert fleet_result.converged  # fingerprint-verified, not just counters


def test_fleet_verdicts_match_single_gateway(fleet_result):
    assert len(fleet_result.fleet_verdicts) == fleet_result.packets
    assert fleet_result.verdicts_match


def test_convergence_lag_opens_and_closes(fleet_result):
    # Replicas were off the live path, so the committed edits opened a
    # real version lag before each catch-up...
    assert all(lag > 0 for lag in fleet_result.max_lag.values())
    # ...and every replica replayed every committed transaction.
    for applied in fleet_result.records_applied.values():
        assert applied == fleet_result.store_version


def test_traffic_spreads_across_all_gateways(fleet_result):
    assert len(fleet_result.per_gateway_packets) == GATEWAYS
    assert sum(fleet_result.per_gateway_packets) == fleet_result.packets
    assert all(count > 0 for count in fleet_result.per_gateway_packets)


def test_catch_up_reuses_interned_rule_parses(fleet_result):
    # Convergence cost must drop replica-over-replica: the delta log's
    # rule strings are parsed once and interned, so with 3 gateways
    # replaying the identical records (plus churn toggles re-committing
    # the same rule texts) catch-up reuses far more parses than it does
    # cold ones.
    hits = fleet_result.catch_up_parse_hits
    misses = fleet_result.catch_up_parse_misses
    assert hits + misses > 0  # the churn schedule replayed add/replace ops
    assert hits > misses


def test_policy_churn_surfaces_hottest_apps(fleet_result):
    # The rotating per-app deny edits must register as per-app cache churn.
    assert fleet_result.top_churn_apps
    assert all(count > 0 for _, count in fleet_result.top_churn_apps)


def test_bench_late_joiner_bootstrap(benchmark, late_joiner_result):
    # The timed body is the attach itself (snapshot bootstrap + suffix
    # replay); the module fixture's full run provides the numbers the
    # BENCH_fleet.json artifact carries across PRs.
    result = benchmark.pedantic(
        lambda: run_late_joiner_bench(
            versions=LATE_JOINER_VERSIONS,
            compact_every=COMPACT_EVERY,
            packets=min(PACKETS, 2_000),
            corpus_apps=6,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["late_joiner"] = {
        "versions": result.versions,
        "compact_every": result.compact_every,
        "suffix_records": result.suffix_records,
        "bootstrap_records": result.bootstrap_records,
        "full_history_records": result.full_history_records,
        "compacted_log_bytes": result.compacted_log_bytes,
        "full_log_bytes": result.full_log_bytes,
        "bootstrap_wall_s": result.bootstrap_wall_s,
        "full_replay_wall_s": result.full_replay_wall_s,
    }
    print("\n" + result.summary())
    assert result.bootstrap_bound_held


def test_late_joiner_replays_suffix_not_history(late_joiner_result):
    # The acceptance bound: after >= 200 committed versions with
    # compact_every=50, attach cost is at most suffix + 1 records...
    assert late_joiner_result.versions >= 200
    assert late_joiner_result.bootstrap_records <= late_joiner_result.suffix_records + 1
    assert late_joiner_result.suffix_records < COMPACT_EVERY
    # ...while the uncompacted control replays every committed version
    # (plus its genesis bootstrap).
    assert late_joiner_result.full_history_records == late_joiner_result.versions + 1
    assert late_joiner_result.bootstrap_records < late_joiner_result.full_history_records
    # Compaction also bounds what goes over the wire.
    assert late_joiner_result.compacted_log_bytes < late_joiner_result.full_log_bytes


def test_late_joiner_converges_and_matches_head_verdicts(late_joiner_result):
    assert late_joiner_result.converged  # head fingerprint, verified
    assert late_joiner_result.verdicts_match


def test_process_backend_verdict_identical(backend_result):
    assert backend_result.packets == PACKETS
    # One flag covers all three backends: sequential, fork-per-batch
    # and the persistent pool must agree packet for packet.
    assert backend_result.verdicts_match


@timing_sensitive
@multicore
def test_process_backend_beats_sequential_wall_clock(backend_result):
    # The acceptance bar for the modelled parallel speedup: the real
    # fork backend must win on actual wall-clock, not just in the model.
    assert backend_result.speedup > 1.0


def test_bench_shard_backends(benchmark, backend_result):
    # The timed body re-runs the three-way comparison; the pool-vs-fork
    # rows (measured walls + amortized per-batch IPC cost) ride to
    # BENCH_fleet.json in extra_info.
    result = benchmark.pedantic(
        lambda: run_shard_backend_comparison(
            packets=PACKETS, shards=4, corpus_apps=6, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["shard_backends"] = {
        "packets": result.packets,
        "batches": result.batches,
        "shards": result.shards,
        "cpus": result.cpus,
        "sequential_wall_s": result.sequential_wall_s,
        "process_wall_s": result.process_wall_s,
        "pool_wall_s": result.pool_wall_s,
        "process_ipc_ms_per_batch": result.process_ipc_ms_per_batch,
        "pool_ipc_ms_per_batch": result.pool_ipc_ms_per_batch,
        "pool_vs_process": result.pool_vs_process,
        "verdicts_match": result.verdicts_match,
    }
    print("\n" + result.summary())
    assert result.verdicts_match


@timing_sensitive
@multicore
def test_pool_backend_beats_fork_wall_clock(backend_result):
    # The tentpole acceptance bar: long-lived workers that skip the
    # per-batch fork must beat fork-per-batch on measured wall-clock,
    # and on multi-core hosts also beat the sequential baseline.
    assert backend_result.pool_vs_process > 1.0
    assert backend_result.pool_speedup > 1.0


def test_bench_fleet_pool(benchmark):
    # The gateway-pool fleet run: pipelined bursts against live worker
    # delta pushes, with the measured pipelined wall and pool health
    # counters carried to BENCH_fleet.json.
    result = benchmark.pedantic(
        lambda: run_fleet_bench(
            packets=PACKETS,
            devices=DEVICES,
            gateways=GATEWAYS,
            shards_per_gateway=SHARDS,
            edits=EDITS,
            seed=7,
            backend_packets=0,
            backend="pool",
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["fleet_pool"] = {
        "packets": result.packets,
        "gateways": result.gateways,
        "backend": result.fleet_backend,
        "measured_wall_s": result.fleet_measured_wall_s,
        "modelled_compute_s": result.fleet_wall_s,
        "delta_pushes": result.pool_delta_pushes,
        "worker_crashes": result.pool_worker_crashes,
        "verdicts_match": result.verdicts_match,
    }
    print("\n" + result.table())
    # Replication through long-lived workers must never change what the
    # policy decides.
    assert result.verdicts_match
    assert result.converged
    if result.fleet_backend == "pool":
        assert result.fleet_measured_wall_s > 0.0
        assert result.pool_delta_pushes > 0


@pytest.fixture(scope="module")
def scheduler_result():
    return run_scheduler_comparison(packets=PACKETS, shards=4, corpus_apps=6, seed=7)


def test_bench_scheduler(benchmark, scheduler_result):
    # Adaptive-vs-static batch scheduling on the pooled replay; the row
    # BENCH_fleet.json archives across PRs.  The timed body re-runs the
    # comparison, the module fixture supplies the asserted numbers.
    result = benchmark.pedantic(
        lambda: run_scheduler_comparison(
            packets=PACKETS, shards=4, corpus_apps=6, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["scheduler"] = {
        "packets": result.packets,
        "shards": result.shards,
        "cpus": result.cpus,
        "backend": result.backend,
        "static_batches": result.static_batches,
        "macro_bursts": result.macro_bursts,
        "sequential_wall_s": result.sequential_wall_s,
        "static_wall_s": result.static_wall_s,
        "adaptive_wall_s": result.adaptive_wall_s,
        "adaptive_vs_static": result.adaptive_vs_static,
        "decisions": result.decisions,
        "final_sizes": list(result.final_sizes),
        "verdicts_match": result.verdicts_match,
    }
    print("\n" + result.summary())
    record_bench_metadata(benchmark.extra_info, smoke=PACKETS < 5000)
    assert result.verdicts_match


def test_adaptive_scheduler_verdict_identical(scheduler_result):
    # run_scheduler_comparison raises on divergence; the flag must also
    # survive on the result the JSON row is built from.
    assert scheduler_result.packets == PACKETS
    assert scheduler_result.verdicts_match


@timing_sensitive
@multicore
def test_adaptive_scheduler_at_least_matches_static_split(scheduler_result):
    # The acceptance bar: scheduled batching must not give back the
    # static split's throughput on multi-core full runs (a 5% band
    # absorbs shared-runner noise; smoke runs only assert identity).
    assert scheduler_result.backend == "pool"
    assert (
        scheduler_result.adaptive_wall_s
        <= scheduler_result.static_wall_s * 1.05
    )
