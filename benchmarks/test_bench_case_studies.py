"""Benchmark + reproduction checks for the §VI-C case studies.

Cloud storage (Dropbox-like and Box-like apps): only BorderPatrol blocks
uploads while keeping login/browse/download working.  Facebook SDK
(SolCalendar-like app): only BorderPatrol separates "Login with
Facebook" from analytics reporting on the shared Graph API endpoint.

Run with:  pytest benchmarks/test_bench_case_studies.py --benchmark-only
"""

import pytest

from repro.experiments.case_studies import (
    run_cloud_storage_case_study,
    run_facebook_case_study,
)

CLOUD_APPS = ("com.cloudbox.android", "com.boxsync.android")


@pytest.fixture(scope="module")
def cloud_result():
    return run_cloud_storage_case_study()


@pytest.fixture(scope="module")
def facebook_result():
    return run_facebook_case_study()


def test_bench_cloud_storage_case_study(benchmark):
    result = benchmark.pedantic(run_cloud_storage_case_study, rounds=1, iterations=1)
    print("\n" + result.table())
    assert result.outcomes


def test_bench_facebook_case_study(benchmark):
    result = benchmark.pedantic(run_facebook_case_study, rounds=1, iterations=1)
    print("\n" + result.table())
    assert result.outcomes


def test_cloud_storage_unenforced_allows_everything(cloud_result):
    for app in CLOUD_APPS:
        assert cloud_result.desirable_preserved("none", app)
        assert not cloud_result.undesirable_blocked("none", app)


def test_cloud_storage_on_network_is_not_selective(cloud_result):
    # Address-based blocking of the upload destination always breaks some
    # desirable functionality (all of it for the shared-endpoint app, the
    # browse/list path for the split-endpoint app).
    for app in CLOUD_APPS:
        assert cloud_result.undesirable_blocked("on-network", app)
        assert not cloud_result.desirable_preserved("on-network", app)
        assert not cloud_result.achieves_selective_blocking("on-network", app)


def test_cloud_storage_borderpatrol_is_selective(cloud_result):
    for app in CLOUD_APPS:
        assert cloud_result.achieves_selective_blocking("borderpatrol", app)


def test_facebook_on_network_breaks_login(facebook_result):
    assert facebook_result.undesirable_blocked("on-network")
    login = [
        o
        for o in facebook_result.outcomes_for("on-network")
        if o.functionality == "login_with_facebook"
    ]
    assert login and not login[0].completed


def test_facebook_borderpatrol_keeps_login_blocks_analytics(facebook_result):
    assert facebook_result.achieves_selective_blocking("borderpatrol")
    outcomes = {o.functionality: o for o in facebook_result.outcomes_for("borderpatrol")}
    assert outcomes["login_with_facebook"].completed
    assert not outcomes["facebook_analytics"].completed
    assert outcomes["calendar_sync"].completed
