"""Benchmark + reproduction check for Figure 3 and the §VI-B statistics.

Regenerates the IPs-of-interest distribution over the synthetic corpus
and checks the *shape* the paper reports: roughly one app in ten has at
least one IoI, the histogram decays steeply (most IoI apps have exactly
one), most IoI apps keep their contexts within a single Java package,
and a quarter of IoIs mix packages via a shared HTTP client.

Run with:  pytest benchmarks/test_bench_fig3.py --benchmark-only
"""

import pytest

from repro.experiments.fig3_ioi import run_fig3

#: Scaled-down corpus so the benchmark completes in seconds; the
#: paper-scale run (2000 apps, 5000 events) is exposed via examples/corpus_study.py.
N_APPS = 300
EVENTS_PER_APP = 150


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(n_apps=N_APPS, events_per_app=EVENTS_PER_APP)


def test_bench_fig3_ioi_distribution(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig3(n_apps=N_APPS, events_per_app=EVENTS_PER_APP),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.table())

    # Roughly 11% of apps exhibit at least one IoI (paper: 218 / 2000).
    fraction = result.apps_with_ioi / result.total_apps
    assert 0.05 <= fraction <= 0.20

    # The histogram decays: apps with exactly one IoI dominate.
    histogram = result.histogram
    assert histogram, "no IoIs observed at all"
    assert max(histogram) <= 6
    assert histogram.get(1, 0) >= histogram.get(2, 0) >= histogram.get(3, 0)
    assert histogram.get(1, 0) > result.apps_with_ioi / 2


def test_fig3_package_overlap_shape(fig3_result):
    # Paper: 75% of IoI apps are same-package, 25% of IoIs are cross-package.
    assert 0.55 <= fig3_result.same_package_app_fraction <= 0.95
    assert 0.05 <= fig3_result.cross_package_ioi_fraction <= 0.45


def test_fig3_analysis_matches_ground_truth(fig3_result):
    # The BorderPatrol-decoded view must agree with the designed corpus:
    # every app the generator built with an IoI shows up with one, and
    # vice versa (the monkey triggers every functionality at this scale).
    analysis = fig3_result.analysis
    assert analysis.total_apps == fig3_result.total_apps
    assert fig3_result.apps_with_ioi == analysis.total_apps_with_ioi()
